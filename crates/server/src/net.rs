//! The blocking socket front of the ingestion service: a std-only TCP
//! listener that speaks the [`crate::wire`] protocol and feeds decoded
//! batches into an [`LdpServer`]'s bounded shard channels.
//!
//! ## Threading and backpressure
//!
//! ```text
//!  producer sockets ──► per-connection handler threads ──► LdpServer
//!        (N)                 read_frame / validate          bounded
//!                            ingest_batch (may block)       shard queues
//! ```
//!
//! One OS thread per connection, blocking reads — no async runtime, per the
//! vendored-dependency constraint, and none needed: ingestion is
//! throughput-bound, not connection-count-bound, and a blocked thread *is*
//! the backpressure mechanism. When every shard queue is full,
//! `ingest_batch` blocks the handler, the handler stops calling `read`, the
//! kernel receive buffer fills, the TCP window closes, and the remote
//! producer's `write` stalls — flow control propagates from a full shard
//! queue all the way to the producer process with no code in between.
//!
//! ## Error isolation
//!
//! A malformed frame (bad magic, version, CRC, truncation, an out-of-domain
//! batch) closes **only the offending connection**, after a best-effort
//! ABORT frame to the peer. The whole frame is validated against the
//! server's solution before any envelope of it is ingested, so a bad frame
//! never half-poisons a shard; other connections and the aggregation
//! workers never notice.
//!
//! ## Determinism
//!
//! The socket path adds nothing to the ingest semantics: batches are
//! decoded back to the same envelopes the producer pushed, and the shard
//! merge is exact integer addition. A drain of a socket-fed server is
//! therefore bit-identical to in-process ingestion of the same reports —
//! the invariant `tests/net_equivalence.rs` pins across thread and
//! connection counts.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ldp_core::solutions::DynSolution;

use crate::config::ServerConfig;
use crate::service::{Envelope, LdpServer};
use crate::snapshot::{EpochSnapshot, ServerSnapshot};
use crate::wire::{read_frame, solution_fingerprint, write_frame, Frame, WireError, WireSnapshot};

/// Abort code sent to peers that fail the handshake.
pub const ABORT_HANDSHAKE: u16 = 1;
/// Abort code sent to peers whose frame stream is malformed.
pub const ABORT_PROTOCOL: u16 = 2;
/// Abort code sent to peers that stayed silent past the configured read
/// timeout (see [`ServerConfig::read_timeout_ms`]) — either mid-session or
/// while the rest of their fleet waited for them at an EPOCH barrier.
pub const ABORT_TIMEOUT: u16 = 3;

/// A TCP ingestion frontend wrapping one [`LdpServer`].
///
/// [`WireServer::bind`] starts the accept loop; producers connect, speak
/// the [`crate::wire`] session (HELLO, BATCHes, optional SNAPSHOT
/// round trips, DRAIN), and [`WireServer::finish`] tears the listener down
/// and drains the inner server into its final [`ServerSnapshot`].
#[derive(Debug)]
pub struct WireServer {
    server: Option<Arc<LdpServer>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    stats: Arc<NetStats>,
}

/// Shared connection state: diagnostics counters (none of which
/// participate in the determinism contract) plus the fleet-wide EPOCH
/// barrier for longitudinal producers.
#[derive(Debug)]
struct NetStats {
    /// Connections that completed a DRAIN handshake. Guarded by a mutex
    /// (not an atomic) so [`WireServer::wait_for_producers`] can sleep on
    /// `drained_cvar` without a missed-wakeup window between checking the
    /// count and parking.
    drained: Mutex<usize>,
    /// Signaled on every clean drain.
    drained_cvar: Condvar,
    /// Connections dropped for a protocol violation.
    rejected: AtomicUsize,
    /// Reports ingested over all connections.
    ingested: AtomicU64,
    /// Declared producer-fleet size the EPOCH barrier waits for
    /// (see [`WireServer::producers`]).
    fleet: AtomicUsize,
    /// EPOCH barrier state: the fleet's current round and how many
    /// producers have arrived at its end.
    gate: Mutex<EpochGate>,
    /// Signaled when the barrier releases (the fleet's round advances).
    gate_cvar: Condvar,
}

/// The EPOCH barrier's guarded state.
#[derive(Debug, Default)]
struct EpochGate {
    /// The round the fleet is currently streaming.
    round: u64,
    /// Producers that already announced the end of this round.
    arrived: usize,
}

impl NetStats {
    fn new() -> NetStats {
        NetStats {
            drained: Mutex::new(0),
            drained_cvar: Condvar::new(),
            rejected: AtomicUsize::new(0),
            ingested: AtomicU64::new(0),
            fleet: AtomicUsize::new(1),
            gate: Mutex::new(EpochGate::default()),
            gate_cvar: Condvar::new(),
        }
    }

    /// Records one clean DRAIN and wakes every fleet-rendezvous waiter.
    fn note_drained(&self) {
        let mut drained = self.drained.lock().expect("drain counter poisoned");
        *drained += 1;
        self.drained_cvar.notify_all();
    }

    /// Holds the caller at the fleet's EPOCH barrier for the end of
    /// `round`. The last producer to arrive rotates the server's epoch and
    /// releases everyone; returns the fleet's new current round (always
    /// `round + 1`). A waiter that outlives `timeout` withdraws from the
    /// barrier and errors — a hung fleet member must never wedge the rest
    /// forever when a timeout is configured. Errors carry the abort code
    /// the peer should see ([`ABORT_PROTOCOL`] for a round mismatch,
    /// [`ABORT_TIMEOUT`] for an expired wait).
    fn epoch_barrier(
        &self,
        server: &LdpServer,
        round: u64,
        timeout: Option<Duration>,
    ) -> Result<u64, (u16, WireError)> {
        let fleet = self.fleet.load(Ordering::SeqCst).max(1);
        let mut gate = self.gate.lock().expect("epoch gate poisoned");
        if round != gate.round {
            return Err((
                ABORT_PROTOCOL,
                WireError::Payload(format!(
                    "EPOCH announces the end of round {round}, but the fleet is on round {}",
                    gate.round
                )),
            ));
        }
        gate.arrived += 1;
        if gate.arrived >= fleet {
            server.advance_epoch();
            gate.round += 1;
            gate.arrived = 0;
            self.gate_cvar.notify_all();
            return Ok(round + 1);
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        // Guard-loop wait: spurious wakeups re-check the round, so the
        // barrier can never release early or miscount.
        while gate.round <= round {
            gate = match deadline {
                None => self.gate_cvar.wait(gate).expect("epoch gate poisoned"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        gate.arrived -= 1;
                        return Err((
                            ABORT_TIMEOUT,
                            WireError::Payload(format!(
                                "EPOCH barrier for round {round} timed out waiting for \
                                 the rest of the {fleet}-producer fleet"
                            )),
                        ));
                    }
                    self.gate_cvar
                        .wait_timeout(gate, deadline - now)
                        .expect("epoch gate poisoned")
                        .0
                }
            };
        }
        // The fleet may already be racing ahead; what this producer is owed
        // is the round right after the one it announced.
        Ok(round + 1)
    }
}

impl WireServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting producer connections for a freshly spawned [`LdpServer`]
    /// over `solution` and `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        solution: DynSolution,
        config: ServerConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(LdpServer::spawn(solution, config));
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::new());
        let accept = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("ldp-accept".into())
                .spawn(move || accept_loop(&listener, &server, &stop, &stats))
                .expect("cannot spawn accept thread")
        };
        Ok(WireServer {
            server: Some(server),
            addr,
            stop,
            accept: Some(accept),
            stats,
        })
    }

    /// The bound socket address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Declares the producer-fleet size the EPOCH barrier synchronizes
    /// (clamped to ≥ 1; default 1). A longitudinal fleet must declare its
    /// size before the producers connect — counting live connections
    /// instead would race a late-connecting producer and release the
    /// barrier early.
    pub fn producers(self, n: usize) -> Self {
        self.stats.fleet.store(n.max(1), Ordering::SeqCst);
        self
    }

    /// Connections that have completed a clean DRAIN handshake so far.
    pub fn drained_producers(&self) -> usize {
        *self.stats.drained.lock().expect("drain counter poisoned")
    }

    /// The inner server's retained closed-epoch snapshots, oldest first —
    /// the windowed-query surface of a longitudinal wire collection.
    pub fn epochs(&self) -> Vec<EpochSnapshot> {
        self.server
            .as_ref()
            .expect("server not yet finished")
            .epochs()
    }

    /// Connections dropped for protocol violations so far.
    pub fn rejected_connections(&self) -> usize {
        self.stats.rejected.load(Ordering::SeqCst)
    }

    /// Reports ingested over the wire so far (counted at frame validation,
    /// i.e. possibly slightly ahead of shard absorption).
    pub fn ingested_reports(&self) -> u64 {
        self.stats.ingested.load(Ordering::SeqCst)
    }

    /// Blocks until at least `n` producer connections have drained cleanly
    /// — the server-side rendezvous for a fixed-size producer fleet.
    /// Condvar-parked (no polling): the waiter burns no CPU however long
    /// the fleet takes, and the guard loop re-checks the count on every
    /// wakeup, so spurious wakeups can never miscount a producer.
    pub fn wait_for_producers(&self, n: usize) {
        let mut drained = self.stats.drained.lock().expect("drain counter poisoned");
        while *drained < n {
            drained = self
                .stats
                .drained_cvar
                .wait(drained)
                .expect("drain counter poisoned");
        }
    }

    /// Stops accepting, joins every connection handler, drains the inner
    /// server and returns the final merged snapshot — bit-identical to an
    /// in-process ingest of the same reports.
    pub fn finish(mut self) -> ServerSnapshot {
        self.shutdown_listener();
        let server = self.server.take().expect("finish called once");
        let server = Arc::try_unwrap(server)
            .expect("all connection handlers joined, nothing else holds the server");
        server.drain()
    }

    /// Signals the accept loop, wakes it with a dummy connection, and joins
    /// the accept thread plus every handler it spawned.
    fn shutdown_listener(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // `TcpListener::accept` has no timeout; a throwaway local connection
        // is the portable way to wake it so it can observe `stop`.
        let _ = TcpStream::connect(self.addr);
        let handlers = accept.join().expect("accept thread panicked");
        for handler in handlers {
            let _ = handler.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        // A dropped-without-finish server still tears its threads down; the
        // inner LdpServer then drains unobserved when the last Arc goes.
        self.shutdown_listener();
    }
}

/// Accepts until `stop` is set, spawning one handler thread per producer.
/// Returns the handler join handles so the shutdown path can wait for
/// in-flight connections to settle before draining.
fn accept_loop(
    listener: &TcpListener,
    server: &Arc<LdpServer>,
    stop: &AtomicBool,
    stats: &Arc<NetStats>,
) -> Vec<JoinHandle<()>> {
    let fingerprint = solution_fingerprint(server.solution());
    let mut handlers = Vec::new();
    for (conn, stream) in listener.incoming().enumerate() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let server = Arc::clone(server);
        let stats = Arc::clone(stats);
        handlers.push(
            std::thread::Builder::new()
                .name(format!("ldp-conn-{conn}"))
                .spawn(move || {
                    match drive_connection(stream, &server, fingerprint, &stats) {
                        Ok(true) => {
                            stats.note_drained();
                        }
                        // A peer may disconnect without draining (e.g. a
                        // monitoring probe); that is not a violation.
                        Ok(false) => {}
                        Err(_) => {
                            stats.rejected.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
                .expect("cannot spawn connection handler"),
        );
    }
    handlers
}

/// Runs one producer session to completion. `Ok(true)` is a clean DRAIN,
/// `Ok(false)` a clean disconnect without one; any `Err` already sent a
/// best-effort ABORT and stands for "this connection was cut, everyone
/// else keeps going".
fn drive_connection(
    stream: TcpStream,
    server: &LdpServer,
    fingerprint: u64,
    stats: &NetStats,
) -> Result<bool, WireError> {
    // Frames are small relative to throughput; turn Nagle off so snapshot
    // and drain acks turn around immediately.
    let _ = stream.set_nodelay(true);
    // The idle-connection guard: a producer that stays silent past the
    // configured timeout surfaces as a WouldBlock/TimedOut read below,
    // which ABORTs the connection instead of pinning this handler thread
    // (and any quiesced snapshot barrier queued behind its shard traffic)
    // forever. `0` keeps the historical block-forever behavior.
    let read_timeout = match server.config().read_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    stream.set_read_timeout(read_timeout)?;
    let mut reader = BufReader::with_capacity(256 * 1024, stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Session opener: exactly one HELLO with a matching fingerprint.
    match read_frame(&mut reader) {
        Ok(Frame::Hello { fingerprint: got }) if got == fingerprint => {
            write_frame(
                &mut writer,
                &Frame::HelloAck {
                    fingerprint,
                    shards: server.config().shards as u32,
                },
            )?;
            writer.flush()?;
        }
        Ok(Frame::Hello { fingerprint: got }) => {
            let reason = format!(
                "producer solution fingerprint {got:#018x} does not match the server's \
                 {fingerprint:#018x} (different solution, domains or epsilon?)"
            );
            abort(&mut writer, ABORT_HANDSHAKE, &reason);
            return Err(WireError::Handshake(reason));
        }
        Ok(_) => {
            let reason = "expected HELLO as the first frame".to_string();
            abort(&mut writer, ABORT_HANDSHAKE, &reason);
            return Err(WireError::Handshake(reason));
        }
        Err(WireError::Closed) => return Ok(false),
        Err(e) => {
            abort(&mut writer, abort_code(&e), &e.to_string());
            return Err(e);
        }
    }

    let solution = server.solution().clone();
    let mut ingested = 0u64;
    loop {
        match read_frame(&mut reader) {
            Ok(Frame::Batch(batch)) => {
                // Validate the *whole* frame before ingesting any of it:
                // frames are atomic, so a malformed one is rejected without
                // a single envelope reaching a shard. The solution-instance
                // check additionally bounds numeric fixed-point magnitudes
                // for mixed batches (a forged huge report would otherwise
                // poison the exact sums).
                if let Err(e) = batch.validate_for_solution(&solution) {
                    let e = WireError::Batch(e);
                    abort(&mut writer, ABORT_PROTOCOL, &e.to_string());
                    return Err(e);
                }
                let len = batch.len() as u64;
                // May block on a full shard queue — that block is the
                // backpressure path described in the module docs.
                server.ingest_batch(batch.iter().map(|(uid, report)| Envelope { uid, report }));
                ingested += len;
                stats.ingested.fetch_add(len, Ordering::SeqCst);
            }
            Ok(Frame::SnapshotRequest { quiesce }) => {
                if quiesce {
                    server.quiesce();
                }
                let snapshot = server.snapshot();
                write_frame(&mut writer, &Frame::Snapshot(WireSnapshot::from(&snapshot)))?;
                writer.flush()?;
            }
            Ok(Frame::Epoch { round }) => {
                // Fleet lockstep: held here until every declared producer
                // announces the end of `round`; the last arrival rotates
                // the server's epoch. The wait is bounded by the same read
                // timeout as the socket, so one hung fleet member aborts
                // its peers' barriers instead of wedging them.
                match stats.epoch_barrier(server, round, read_timeout) {
                    Ok(current) => {
                        write_frame(&mut writer, &Frame::Epoch { round: current })?;
                        writer.flush()?;
                    }
                    Err((code, e)) => {
                        abort(&mut writer, code, &e.to_string());
                        return Err(e);
                    }
                }
            }
            Ok(Frame::Drain) => {
                write_frame(&mut writer, &Frame::DrainAck { n: ingested })?;
                writer.flush()?;
                return Ok(true);
            }
            Ok(Frame::Abort { .. }) => return Ok(false),
            Ok(other) => {
                let e = WireError::Payload(format!(
                    "unexpected {} frame in an open session",
                    frame_name(&other)
                ));
                abort(&mut writer, ABORT_PROTOCOL, &e.to_string());
                return Err(e);
            }
            Err(WireError::Closed) => return Ok(false),
            Err(e) => {
                abort(&mut writer, abort_code(&e), &e.to_string());
                return Err(e);
            }
        }
    }
}

/// Picks the abort code a failed read deserves: an expired socket read
/// timeout is the peer idling ([`ABORT_TIMEOUT`]), anything else is a
/// malformed stream ([`ABORT_PROTOCOL`]).
fn abort_code(e: &WireError) -> u16 {
    match e {
        WireError::Io(io)
            if matches!(
                io.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            ABORT_TIMEOUT
        }
        _ => ABORT_PROTOCOL,
    }
}

/// Best-effort ABORT notification; the connection is going away either way.
fn abort(writer: &mut impl Write, code: u16, message: &str) {
    let _ = write_frame(
        writer,
        &Frame::Abort {
            code,
            message: message.to_string(),
        },
    );
    let _ = writer.flush();
}

fn frame_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Hello { .. } => "HELLO",
        Frame::HelloAck { .. } => "HELLO_ACK",
        Frame::Batch(_) => "BATCH",
        Frame::SnapshotRequest { .. } => "SNAPSHOT_REQUEST",
        Frame::Snapshot(_) => "SNAPSHOT",
        Frame::Drain => "DRAIN",
        Frame::DrainAck { .. } => "DRAIN_ACK",
        Frame::Abort { .. } => "ABORT",
        Frame::Epoch { .. } => "EPOCH",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{CompactBatch, RsFdProtocol, SolutionKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spawn_server() -> (WireServer, DynSolution) {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(2),
        )
        .unwrap();
        (server, solution)
    }

    fn handshake(addr: SocketAddr, solution: &DynSolution) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream.try_clone().unwrap();
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint: solution_fingerprint(solution),
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::HelloAck { .. }
        ));
        (reader, stream)
    }

    #[test]
    fn socket_session_ingests_snapshots_and_drains() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut batch = CompactBatch::new();
        for uid in 0..200u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        write_frame(&mut writer, &Frame::SnapshotRequest { quiesce: true }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Snapshot(snap) => {
                assert_eq!(snap.n, 200);
                assert_eq!(snap.estimates.len(), 2);
            }
            other => panic!("expected SNAPSHOT, got {other:?}"),
        }
        write_frame(&mut writer, &Frame::Drain).unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::DrainAck { n: 200 }
        ));
        server.wait_for_producers(1);
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 200);
    }

    #[test]
    fn wrong_fingerprint_is_rejected_at_handshake() {
        let (server, _solution) = spawn_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(&mut writer, &Frame::Hello { fingerprint: 0xBAD }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_HANDSHAKE),
            other => panic!("expected ABORT, got {other:?}"),
        }
        // The server survives and still serves valid producers.
        assert_eq!(server.finish().n, 0);
    }

    #[test]
    fn corrupt_frame_closes_only_the_offending_connection() {
        let (server, solution) = spawn_server();
        let addr = server.local_addr();

        // A well-behaved producer on one connection…
        let (mut good_reader, good_stream) = handshake(addr, &solution);
        let mut good_writer = good_stream.try_clone().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut batch = CompactBatch::new();
        for uid in 0..100u64 {
            batch.push(uid, &solution.report(&[0, 1], &mut rng));
        }
        write_frame(&mut good_writer, &Frame::Batch(batch.clone())).unwrap();
        good_writer.flush().unwrap();

        // …and garbage on another: corrupt CRC after a valid handshake.
        let (mut bad_reader, bad_stream) = handshake(addr, &solution);
        let mut bad_writer = bad_stream.try_clone().unwrap();
        let mut buf = Vec::new();
        crate::wire::encode_frame(&Frame::Batch(batch), &mut buf);
        *buf.last_mut().unwrap() ^= 0xFF;
        std::io::Write::write_all(&mut bad_writer, &buf).unwrap();
        bad_writer.flush().unwrap();
        match read_frame(&mut bad_reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut bad_reader),
            Err(WireError::Closed)
        ));

        // The good connection is unaffected: it can still snapshot + drain.
        write_frame(&mut good_writer, &Frame::Drain).unwrap();
        good_writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut good_reader).unwrap(),
            Frame::DrainAck { n: 100 }
        ));
        server.wait_for_producers(1);
        assert_eq!(server.rejected_connections(), 1);
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 100, "corrupt frame must not poison a shard");
    }

    #[test]
    fn wait_for_producers_parks_on_the_condvar_until_the_fleet_drains() {
        let (server, solution) = spawn_server();
        let addr = server.local_addr();
        let server = Arc::new(server);
        // The waiter parks *before* any producer drains — the miscount this
        // guards against is a drain signaled between the waiter's count
        // check and its park (the old busy-spin never slept long enough to
        // expose it; the condvar closes the window by holding the lock
        // across both).
        let waiter = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.wait_for_producers(2))
        };
        for seed in [41u64, 43] {
            let (mut reader, stream) = handshake(addr, &solution);
            let mut writer = stream.try_clone().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut batch = CompactBatch::new();
            for uid in 0..50u64 {
                batch.push(uid, &solution.report(&[1, 2], &mut rng));
            }
            write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
            write_frame(&mut writer, &Frame::Drain).unwrap();
            writer.flush().unwrap();
            assert!(matches!(
                read_frame(&mut reader).unwrap(),
                Frame::DrainAck { n: 50 }
            ));
        }
        waiter.join().expect("rendezvous waiter panicked");
        assert_eq!(server.drained_producers(), 2);
        let server = Arc::try_unwrap(server).expect("waiter released its handle");
        assert_eq!(server.finish().n, 100);
    }

    #[test]
    fn epoch_frames_advance_a_two_producer_fleet_in_lockstep() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(2).retain(8),
        )
        .unwrap()
        .producers(2);
        let addr = server.local_addr();
        let mut rng = StdRng::seed_from_u64(51);
        let mut rounds_batches = Vec::new();
        for _ in 0..2 {
            let mut batch = CompactBatch::new();
            for uid in 0..40u64 {
                batch.push(uid, &solution.report(&[2, 1], &mut rng));
            }
            rounds_batches.push(batch);
        }
        // Two producers each stream one round then hit the barrier; the
        // barrier must hold until BOTH arrive, then ack round 1 to both.
        let mut sessions: Vec<_> = (0..2)
            .map(|i| {
                let solution = solution.clone();
                let batch = rounds_batches[i].clone();
                std::thread::spawn(move || {
                    let (mut reader, stream) = {
                        let stream = TcpStream::connect(addr).unwrap();
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        let mut writer = stream.try_clone().unwrap();
                        write_frame(
                            &mut writer,
                            &Frame::Hello {
                                fingerprint: solution_fingerprint(&solution),
                            },
                        )
                        .unwrap();
                        writer.flush().unwrap();
                        assert!(matches!(
                            read_frame(&mut reader).unwrap(),
                            Frame::HelloAck { .. }
                        ));
                        (reader, stream)
                    };
                    let mut writer = stream.try_clone().unwrap();
                    write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
                    write_frame(&mut writer, &Frame::Epoch { round: 0 }).unwrap();
                    writer.flush().unwrap();
                    match read_frame(&mut reader).unwrap() {
                        Frame::Epoch { round } => assert_eq!(round, 1),
                        other => panic!("expected EPOCH ack, got {other:?}"),
                    }
                    write_frame(&mut writer, &Frame::Drain).unwrap();
                    writer.flush().unwrap();
                    assert!(matches!(
                        read_frame(&mut reader).unwrap(),
                        Frame::DrainAck { n: 40 }
                    ));
                })
            })
            .collect();
        for session in sessions.drain(..) {
            session.join().expect("producer session panicked");
        }
        server.wait_for_producers(2);
        // One closed epoch holding both producers' round-0 batches.
        let epochs = server.epochs();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].epoch, 0);
        assert_eq!(epochs[0].snapshot.n, 80);
        assert_eq!(server.finish().n, 80);
    }

    #[test]
    fn mismatched_epoch_round_is_rejected() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        write_frame(&mut writer, &Frame::Epoch { round: 7 }).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        assert_eq!(server.finish().n, 0);
    }

    #[test]
    fn foreign_solution_batch_is_rejected_atomically() {
        let (server, solution) = spawn_server();
        let (mut reader, stream) = handshake(server.local_addr(), &solution);
        let mut writer = stream.try_clone().unwrap();
        // Structurally valid words, wrong shape: an SMP batch for a fake-
        // data server. The whole frame must be rejected pre-ingest.
        let smp = SolutionKind::Smp(ldp_protocols::ProtocolKind::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut batch = CompactBatch::new();
        for uid in 0..50u64 {
            batch.push(uid, &smp.report(&[1, 1], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { code, .. } => assert_eq!(code, ABORT_PROTOCOL),
            other => panic!("expected ABORT, got {other:?}"),
        }
        let snapshot = server.finish();
        assert_eq!(snapshot.n, 0, "no envelope of a rejected frame may land");
    }
}
