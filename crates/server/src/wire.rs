//! The versioned ingestion wire protocol: length-prefixed, checksummed
//! frames carrying [`CompactBatch`] envelopes and the session control
//! messages around them.
//!
//! ## Frame grammar
//!
//! Every frame is a fixed 16-byte header followed by `len` payload bytes,
//! all little-endian:
//!
//! ```text
//! offset  size  field
//!      0     4  magic     = 0x4C445057 ("LDPW")
//!      4     2  version   = 2
//!      6     1  frame type (see below)
//!      7     1  flags     (SNAPSHOT_REQUEST bit 0 = quiesce first)
//!      8     4  payload length in bytes (≤ 64 MiB)
//!     12     4  CRC-32 (IEEE) over the payload bytes
//! ```
//!
//! | type | frame            | payload                                     |
//! |------|------------------|---------------------------------------------|
//! | 0    | HELLO            | fingerprint (u64) + auth digest (u64)        |
//! | 1    | HELLO_ACK        | fingerprint (u64) + shards (u32) + session token (u64) + ack interval (u32) |
//! | 2    | BATCH            | [`CompactBatch::encode_into`] bytes          |
//! | 3    | SNAPSHOT_REQUEST | empty (flags bit 0 requests a quiesce)       |
//! | 4    | SNAPSHOT         | [`WireSnapshot`] (estimates + normalized)    |
//! | 5    | DRAIN            | empty — producer is done                     |
//! | 6    | DRAIN_ACK        | reports the server ingested for this session |
//! | 7    | ABORT            | error code (u16) + UTF-8 message             |
//! | 8    | EPOCH            | round index (u64) — epoch barrier / ack      |
//! | 9    | BATCH_SEQ        | sequence number (u64) + BATCH bytes          |
//! | 10   | BATCH_ACK        | cumulative acked seq (u64) + ingested (u64)  |
//! | 11   | RESUME           | session token (u64) + last acked seq (u64)   |
//! | 12   | RESUME_ACK       | server's cumulative acked seq (u64)          |
//!
//! A session is `HELLO → HELLO_ACK`, then any interleaving of `BATCH` /
//! `BATCH_SEQ` and `SNAPSHOT_REQUEST → SNAPSHOT`, closed by
//! `DRAIN → DRAIN_ACK`. A longitudinal producer additionally sends
//! `EPOCH { round }` after its last batch of round `round`; the server holds
//! the frame at a fleet-wide barrier, rotates its epoch once every producer
//! has arrived, and acks with `EPOCH { round + 1 }` — the lockstep that
//! keeps a remote fleet's rounds aligned with the server's windowed
//! aggregation.
//!
//! ## Fault tolerance
//!
//! `BATCH_SEQ` carries a per-session sequence number starting at 1, strictly
//! monotone, gapless. The server acks cumulatively with
//! `BATCH_ACK { seq, n }` every [`crate::ServerConfig::ack_every`] batches
//! (the interval is announced in HELLO_ACK), which bounds the producer's
//! in-flight bytes: a client keeps at most its replay-ring budget of sealed,
//! unacked frames and blocks for an ack once the ring fills. A reconnecting
//! producer re-handshakes and sends `RESUME { session, last_acked }` with
//! the token its original HELLO_ACK issued; the server answers
//! `RESUME_ACK { acked_seq }` from its bounded session table and silently
//! discards any replayed `seq ≤ acked_seq`, so ingest stays exactly-once.
//! Because every report is a pure function of `(seed, uid)` (see
//! `ldp_sim::user_rng`), a replayed batch is bit-identical to the lost one,
//! and a faulted fleet drain equals the clean run bit-for-bit.
//!
//! Version negotiation is deliberately blunt: the header pins version 2, and
//! a mismatch is rejected with a typed [`WireError::VersionMismatch`] before
//! any payload byte is interpreted — there is exactly one wire dialect per
//! build, ever, so "negotiation" is the client learning it speaks the wrong
//! one.
//!
//! Everything here is pure codec — no sockets. The blocking listener lives
//! in [`crate::net`]; the reader side works over any `std::io::Read`, which
//! is what the fuzz tests exploit to replay mutated byte streams without a
//! network.

use std::io::{Read, Write};

use ldp_core::solutions::{CompactBatch, CompactDecodeError, DynSolution};
use ldp_protocols::hash::mix2;

use crate::snapshot::ServerSnapshot;

/// Frame header magic: `b"LDPW"` read as a little-endian `u32`.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"LDPW");

/// The (single) protocol version this build speaks.
pub const WIRE_VERSION: u16 = 2;

/// Hard cap on a frame payload — far above any sane batch (a default
/// 1024-report batch is a few hundred KiB), small enough that a forged
/// length cannot balloon server memory.
pub const MAX_PAYLOAD: u32 = 64 << 20;

const FT_HELLO: u8 = 0;
const FT_HELLO_ACK: u8 = 1;
const FT_BATCH: u8 = 2;
const FT_SNAPSHOT_REQUEST: u8 = 3;
const FT_SNAPSHOT: u8 = 4;
const FT_DRAIN: u8 = 5;
const FT_DRAIN_ACK: u8 = 6;
const FT_ABORT: u8 = 7;
const FT_EPOCH: u8 = 8;
const FT_BATCH_SEQ: u8 = 9;
const FT_BATCH_ACK: u8 = 10;
const FT_RESUME: u8 = 11;
const FT_RESUME_ACK: u8 = 12;

const FLAG_QUIESCE: u8 = 1;

/// Why a frame could not be read or decoded. Every variant is a *handled*
/// failure: the connection that produced it is closed (with a best-effort
/// [`Frame::Abort`]) and the server keeps serving everyone else — malformed
/// input never panics and never reaches an aggregator shard.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the stream cleanly *between* frames.
    Closed,
    /// The stream ended mid-frame.
    Truncated,
    /// A configured read deadline expired while waiting for the peer — the
    /// typed face of `WouldBlock`/`TimedOut`, so a hung peer surfaces as a
    /// handled, retryable condition instead of a generic transport error.
    Timeout,
    /// The header does not start with [`WIRE_MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Version claimed by the peer's frame header.
        got: u16,
    },
    /// Unknown frame type byte.
    UnknownFrameType(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// Payload bytes do not hash to the header's CRC-32.
    ChecksumMismatch {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the bytes actually received.
        got: u32,
    },
    /// A control frame's payload is malformed.
    Payload(String),
    /// A BATCH payload failed [`CompactBatch::decode_from`] or
    /// [`CompactBatch::validate_for`].
    Batch(CompactDecodeError),
    /// Handshake violation: missing HELLO, or a solution fingerprint that
    /// does not match the server's.
    Handshake(String),
    /// The peer reported an error of its own via [`Frame::Abort`].
    Remote {
        /// Peer-assigned error code.
        code: u16,
        /// Peer-supplied description.
        message: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Timeout => write!(f, "read deadline expired waiting for the peer"),
            WireError::BadMagic(got) => write!(f, "bad frame magic {got:#010x}"),
            WireError::VersionMismatch { got } => {
                write!(
                    f,
                    "peer speaks wire version {got}, this build speaks {WIRE_VERSION}"
                )
            }
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Oversize(len) => {
                write!(f, "payload of {len} B exceeds the {MAX_PAYLOAD} B cap")
            }
            WireError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "payload CRC {got:#010x} does not match header {expected:#010x}"
                )
            }
            WireError::Payload(reason) => write!(f, "malformed frame payload: {reason}"),
            WireError::Batch(e) => write!(f, "malformed batch: {e}"),
            WireError::Handshake(reason) => write!(f, "handshake violation: {reason}"),
            WireError::Remote { code, message } => {
                write!(f, "peer aborted (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Batch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => WireError::Timeout,
            _ => WireError::Io(e),
        }
    }
}

impl From<CompactDecodeError> for WireError {
    fn from(e: CompactDecodeError) -> Self {
        WireError::Batch(e)
    }
}

/// One protocol message — see the [module docs](crate::wire) for the
/// session grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server session opener carrying the client's solution
    /// fingerprint (see [`solution_fingerprint`]).
    Hello {
        /// Fingerprint of the solution the client sanitizes for.
        fingerprint: u64,
        /// Digest of the shared secret ([`auth_fingerprint`]); 0 means the
        /// client presented no token. A server configured with
        /// `ServerConfig::auth_token` rejects a mismatch with `ABORT_AUTH`.
        auth: u64,
    },
    /// Server → client handshake acceptance, echoing the fingerprint.
    HelloAck {
        /// The server's own solution fingerprint (equal on success).
        fingerprint: u64,
        /// The server's shard count, for producer diagnostics.
        shards: u32,
        /// Server-issued session token for [`Frame::Resume`]; 0 means the
        /// session table was full and this connection cannot resume.
        session: u64,
        /// The server acks every this-many `BATCH_SEQ` frames — clients
        /// size their replay ring at least this large so an ack is always
        /// owed before the ring fills.
        ack_every: u32,
    },
    /// A compact-encoded batch of `(uid, report)` envelopes.
    Batch(CompactBatch),
    /// Client → server request for the current merged estimates.
    SnapshotRequest {
        /// Barrier first, so the snapshot covers everything this producer
        /// sent before the request (see `LdpServer::quiesce`).
        quiesce: bool,
    },
    /// Server → client incremental snapshot of the merged estimates.
    Snapshot(WireSnapshot),
    /// Client → server end-of-stream: drain this session.
    Drain,
    /// Server → client drain acknowledgment.
    DrainAck {
        /// Reports the server ingested over this connection.
        n: u64,
    },
    /// Either side → peer fatal error notification; the sender closes after.
    Abort {
        /// Machine-readable error code.
        code: u16,
        /// Human-readable description.
        message: String,
    },
    /// Epoch lockstep. Client → server: "I finished streaming round
    /// `round`" (held at the fleet barrier). Server → client: "the fleet
    /// advanced; the current round is now `round`".
    Epoch {
        /// Collection round index (see direction above).
        round: u64,
    },
    /// A [`Frame::Batch`] carrying its per-session sequence number, so the
    /// server can ack cumulatively and dedup replays after a reconnect.
    BatchSeq {
        /// 1-based, strictly monotone, gapless per-session sequence number.
        seq: u64,
        /// The batch itself.
        batch: CompactBatch,
    },
    /// Server → client cumulative acknowledgment: every `BATCH_SEQ` with
    /// `seq ≤ acked` has been durably ingested and may leave the client's
    /// replay ring.
    BatchAck {
        /// Highest contiguously ingested sequence number for this session.
        seq: u64,
        /// Reports ingested for this session so far (across reconnects).
        n: u64,
    },
    /// Client → server, immediately after a re-handshake: reclaim the
    /// session `session` and learn how far the server actually got.
    Resume {
        /// The token the original HELLO_ACK issued.
        session: u64,
        /// Highest seq the client saw acked before the fault (a lower bound
        /// on the server's state; the server may have ingested further).
        last_acked: u64,
    },
    /// Server → client resume acceptance.
    ResumeAck {
        /// The server's cumulative acked seq — the client replays
        /// everything after this and discards the rest of its ring.
        acked_seq: u64,
    },
}

/// The over-the-wire projection of a [`ServerSnapshot`]: the merged counts'
/// estimates without the aggregator itself (which never leaves the server).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSnapshot {
    /// Reports absorbed server-wide at snapshot time.
    pub n: u64,
    /// Server shard count.
    pub shards: u32,
    /// Unbiased per-attribute frequency estimates.
    pub estimates: Vec<Vec<f64>>,
    /// Estimates projected onto the probability simplex.
    pub normalized: Vec<Vec<f64>>,
}

impl From<&ServerSnapshot> for WireSnapshot {
    fn from(snapshot: &ServerSnapshot) -> Self {
        WireSnapshot {
            n: snapshot.n,
            shards: snapshot.shards as u32,
            estimates: snapshot.estimates.clone(),
            normalized: snapshot.normalized.clone(),
        }
    }
}

/// Fingerprint of a solution's wire-relevant configuration (family name,
/// domain sizes, ε — and for mixed solutions the numeric mechanism and
/// sample budget). HELLO/HELLO_ACK exchange it so a producer sanitizing
/// for a different solution — which would silently bias every estimate —
/// is rejected at handshake instead of poisoning the aggregate.
pub fn solution_fingerprint(solution: &DynSolution) -> u64 {
    let mut h = mix2(0x11D9_F00D, solution.epsilon().to_bits());
    for &k in solution.ks() {
        h = mix2(h, k as u64);
    }
    for b in solution.name().bytes() {
        h = mix2(h, u64::from(b));
    }
    // The heterogeneous schema (0-sentinel dimensions) is already folded via
    // `ks`; pin the numeric mechanism and per-user budget split explicitly so
    // the handshake rejects a producer randomizing the same schema with a
    // different mechanism even if display names ever collide.
    if let DynSolution::Mixed(m) = solution {
        let mk = m.mixed_kind();
        h = mix2(h, mk.numeric.tag());
        h = mix2(h, mk.sample_k as u64);
    }
    h
}

/// Digest of a shared-secret auth token, carried in [`Frame::Hello`]. Never
/// returns 0 — the zero digest unambiguously means "no token presented", so
/// an empty-string token still authenticates as *something*. This is an
/// integrity check against misconfigured producers, not a cryptographic MAC:
/// the threat model is the same trusted network the rest of the wire tier
/// assumes, and the digest only keeps the wrong fleet out of the wrong
/// aggregator.
pub fn auth_fingerprint(token: &str) -> u64 {
    let mut h = mix2(0xA117_5EC2, token.len() as u64);
    for b in token.bytes() {
        h = mix2(h, u64::from(b));
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time —
/// the workspace vendors no checksum crate, and 256 words is all it takes.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum carried in every frame header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Serializes `frame` into `buf` (cleared first), returning the encoded
/// length. The buffer is reusable across calls — steady-state batch
/// streaming re-serializes into the same allocation.
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) -> usize {
    buf.clear();
    buf.extend_from_slice(&[0u8; 16]);
    let (ftype, flags) = match frame {
        Frame::Hello { fingerprint, auth } => {
            buf.extend_from_slice(&fingerprint.to_le_bytes());
            buf.extend_from_slice(&auth.to_le_bytes());
            (FT_HELLO, 0)
        }
        Frame::HelloAck {
            fingerprint,
            shards,
            session,
            ack_every,
        } => {
            buf.extend_from_slice(&fingerprint.to_le_bytes());
            buf.extend_from_slice(&shards.to_le_bytes());
            buf.extend_from_slice(&session.to_le_bytes());
            buf.extend_from_slice(&ack_every.to_le_bytes());
            (FT_HELLO_ACK, 0)
        }
        Frame::Batch(batch) => {
            batch.encode_into(buf);
            (FT_BATCH, 0)
        }
        Frame::SnapshotRequest { quiesce } => {
            (FT_SNAPSHOT_REQUEST, if *quiesce { FLAG_QUIESCE } else { 0 })
        }
        Frame::Snapshot(snapshot) => {
            buf.extend_from_slice(&snapshot.n.to_le_bytes());
            buf.extend_from_slice(&snapshot.shards.to_le_bytes());
            buf.extend_from_slice(&(snapshot.estimates.len() as u32).to_le_bytes());
            for (est, norm) in snapshot.estimates.iter().zip(&snapshot.normalized) {
                buf.extend_from_slice(&(est.len() as u32).to_le_bytes());
                for &v in est {
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                for &v in norm {
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            (FT_SNAPSHOT, 0)
        }
        Frame::Drain => (FT_DRAIN, 0),
        Frame::DrainAck { n } => {
            buf.extend_from_slice(&n.to_le_bytes());
            (FT_DRAIN_ACK, 0)
        }
        Frame::Abort { code, message } => {
            buf.extend_from_slice(&code.to_le_bytes());
            buf.extend_from_slice(message.as_bytes());
            (FT_ABORT, 0)
        }
        Frame::Epoch { round } => {
            buf.extend_from_slice(&round.to_le_bytes());
            (FT_EPOCH, 0)
        }
        Frame::BatchSeq { seq, batch } => {
            buf.extend_from_slice(&seq.to_le_bytes());
            batch.encode_into(buf);
            (FT_BATCH_SEQ, 0)
        }
        Frame::BatchAck { seq, n } => {
            buf.extend_from_slice(&seq.to_le_bytes());
            buf.extend_from_slice(&n.to_le_bytes());
            (FT_BATCH_ACK, 0)
        }
        Frame::Resume {
            session,
            last_acked,
        } => {
            buf.extend_from_slice(&session.to_le_bytes());
            buf.extend_from_slice(&last_acked.to_le_bytes());
            (FT_RESUME, 0)
        }
        Frame::ResumeAck { acked_seq } => {
            buf.extend_from_slice(&acked_seq.to_le_bytes());
            (FT_RESUME_ACK, 0)
        }
    };
    seal_frame(buf, ftype, flags)
}

/// [`encode_frame`] specialized to a BATCH without constructing the enum —
/// the producer hot path serializes its reused [`CompactBatch`] buffer
/// directly (no move, no clone).
pub fn encode_batch_frame(batch: &CompactBatch, buf: &mut Vec<u8>) -> usize {
    buf.clear();
    buf.extend_from_slice(&[0u8; 16]);
    batch.encode_into(buf);
    seal_frame(buf, FT_BATCH, 0)
}

/// [`encode_batch_frame`]'s sequenced twin: a BATCH_SEQ frame serialized
/// straight from the producer's reused buffer — the hot path of the
/// fault-tolerant client.
pub fn encode_batch_seq_frame(seq: u64, batch: &CompactBatch, buf: &mut Vec<u8>) -> usize {
    buf.clear();
    buf.extend_from_slice(&[0u8; 16]);
    buf.extend_from_slice(&seq.to_le_bytes());
    batch.encode_into(buf);
    seal_frame(buf, FT_BATCH_SEQ, 0)
}

/// Writes the 16-byte header over `buf[..16]` (magic, version, type, flags,
/// payload length, payload CRC) once the payload sits at `buf[16..]`.
fn seal_frame(buf: &mut [u8], ftype: u8, flags: u8) -> usize {
    let len = (buf.len() - 16) as u32;
    debug_assert!(len <= MAX_PAYLOAD, "encoder produced an oversize frame");
    let crc = crc32(&buf[16..]);
    buf[0..4].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
    buf[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    buf[6] = ftype;
    buf[7] = flags;
    buf[8..12].copy_from_slice(&len.to_le_bytes());
    buf[12..16].copy_from_slice(&crc.to_le_bytes());
    buf.len()
}

/// Encodes and writes one frame. Does **not** flush — callers batch frames
/// behind a `BufWriter` and flush at turnaround points.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let mut buf = Vec::new();
    encode_frame(frame, &mut buf);
    w.write_all(&buf)?;
    Ok(())
}

/// Reads and decodes exactly one frame, distinguishing a clean close at a
/// frame boundary ([`WireError::Closed`]) from a mid-frame truncation
/// ([`WireError::Truncated`]). The CRC is verified before any payload byte
/// is interpreted, so a flipped bit surfaces as
/// [`WireError::ChecksumMismatch`], never as a bogus decoded value.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; 16];
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(WireError::Closed),
        Ok(_) => {}
        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {
            return read_frame(r);
        }
        Err(e) => return Err(WireError::from(e)),
    }
    read_exact_or_truncated(r, &mut header[1..])?;
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice"));
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch { got: version });
    }
    let (ftype, flags) = (header[6], header[7]);
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let expected_crc = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice"));
    let mut payload = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut payload)?;
    let got_crc = crc32(&payload);
    if got_crc != expected_crc {
        return Err(WireError::ChecksumMismatch {
            expected: expected_crc,
            got: got_crc,
        });
    }
    decode_payload(ftype, flags, &payload)
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::from(e)
        }
    })
}

/// Decodes a CRC-verified payload into its frame. Every length is checked
/// before the corresponding bytes (or allocation) are touched, so even a
/// payload that *happens* to pass the CRC can only yield a typed error.
fn decode_payload(ftype: u8, flags: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let exact = |n: usize| -> Result<(), WireError> {
        if payload.len() == n {
            Ok(())
        } else {
            Err(WireError::Payload(format!(
                "frame type {ftype}: payload of {} B, expected {n} B",
                payload.len()
            )))
        }
    };
    match ftype {
        FT_HELLO => {
            exact(16)?;
            Ok(Frame::Hello {
                fingerprint: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
                auth: u64::from_le_bytes(payload[8..16].try_into().expect("8-byte slice")),
            })
        }
        FT_HELLO_ACK => {
            exact(24)?;
            Ok(Frame::HelloAck {
                fingerprint: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
                shards: u32::from_le_bytes(payload[8..12].try_into().expect("4-byte slice")),
                session: u64::from_le_bytes(payload[12..20].try_into().expect("8-byte slice")),
                ack_every: u32::from_le_bytes(payload[20..24].try_into().expect("4-byte slice")),
            })
        }
        FT_BATCH => Ok(Frame::Batch(CompactBatch::decode_from(payload)?)),
        FT_SNAPSHOT_REQUEST => {
            exact(0)?;
            Ok(Frame::SnapshotRequest {
                quiesce: flags & FLAG_QUIESCE != 0,
            })
        }
        FT_SNAPSHOT => decode_snapshot(payload),
        FT_DRAIN => {
            exact(0)?;
            Ok(Frame::Drain)
        }
        FT_DRAIN_ACK => {
            exact(8)?;
            Ok(Frame::DrainAck {
                n: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
            })
        }
        FT_ABORT => {
            if payload.len() < 2 {
                return Err(WireError::Payload(
                    "ABORT payload shorter than its code".into(),
                ));
            }
            Ok(Frame::Abort {
                code: u16::from_le_bytes(payload[0..2].try_into().expect("2-byte slice")),
                message: String::from_utf8_lossy(&payload[2..]).into_owned(),
            })
        }
        FT_EPOCH => {
            exact(8)?;
            Ok(Frame::Epoch {
                round: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
            })
        }
        FT_BATCH_SEQ => {
            if payload.len() < 8 {
                return Err(WireError::Payload(
                    "BATCH_SEQ payload shorter than its sequence number".into(),
                ));
            }
            Ok(Frame::BatchSeq {
                seq: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
                batch: CompactBatch::decode_from(&payload[8..])?,
            })
        }
        FT_BATCH_ACK => {
            exact(16)?;
            Ok(Frame::BatchAck {
                seq: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
                n: u64::from_le_bytes(payload[8..16].try_into().expect("8-byte slice")),
            })
        }
        FT_RESUME => {
            exact(16)?;
            Ok(Frame::Resume {
                session: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
                last_acked: u64::from_le_bytes(payload[8..16].try_into().expect("8-byte slice")),
            })
        }
        FT_RESUME_ACK => {
            exact(8)?;
            Ok(Frame::ResumeAck {
                acked_seq: u64::from_le_bytes(payload[0..8].try_into().expect("8-byte slice")),
            })
        }
        other => Err(WireError::UnknownFrameType(other)),
    }
}

fn decode_snapshot(payload: &[u8]) -> Result<Frame, WireError> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], WireError> {
        if payload.len() - pos < n {
            return Err(WireError::Payload("SNAPSHOT payload ends early".into()));
        }
        let s = &payload[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let n = u64::from_le_bytes(take(8)?.try_into().expect("8-byte slice"));
    let shards = u32::from_le_bytes(take(4)?.try_into().expect("4-byte slice"));
    let d = u32::from_le_bytes(take(4)?.try_into().expect("4-byte slice")) as usize;
    let mut estimates = Vec::new();
    let mut normalized = Vec::new();
    for _ in 0..d {
        let k = u32::from_le_bytes(take(4)?.try_into().expect("4-byte slice")) as usize;
        // Capacity is clamped by the payload itself, so a forged k cannot
        // balloon the allocation — `take` then rejects it at the first
        // missing word.
        let mut est = Vec::with_capacity(k.min(payload.len() / 8));
        for _ in 0..k {
            est.push(f64::from_bits(u64::from_le_bytes(
                take(8)?.try_into().expect("8-byte slice"),
            )));
        }
        let mut norm = Vec::with_capacity(k.min(payload.len() / 8));
        for _ in 0..k {
            norm.push(f64::from_bits(u64::from_le_bytes(
                take(8)?.try_into().expect("8-byte slice"),
            )));
        }
        estimates.push(est);
        normalized.push(norm);
    }
    if pos != payload.len() {
        return Err(WireError::Payload("trailing bytes after SNAPSHOT".into()));
    }
    Ok(Frame::Snapshot(WireSnapshot {
        n,
        shards,
        estimates,
        normalized,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{RsFdProtocol, SolutionKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_frames() -> Vec<Frame> {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut batch = CompactBatch::new();
        for uid in 0..50u64 {
            batch.push(uid, &solution.report(&[1, 2], &mut rng));
        }
        vec![
            Frame::Hello {
                fingerprint: 0xFEED,
                auth: 0,
            },
            Frame::Hello {
                fingerprint: 0xFEED,
                auth: auth_fingerprint("hunter2"),
            },
            Frame::HelloAck {
                fingerprint: 0xFEED,
                shards: 4,
                session: 0xD00D_F00D,
                ack_every: 32,
            },
            Frame::Batch(batch.clone()),
            Frame::BatchSeq { seq: 7, batch },
            Frame::BatchAck { seq: 7, n: 350 },
            Frame::Resume {
                session: 0xD00D_F00D,
                last_acked: 6,
            },
            Frame::ResumeAck { acked_seq: 7 },
            Frame::SnapshotRequest { quiesce: true },
            Frame::SnapshotRequest { quiesce: false },
            Frame::Snapshot(WireSnapshot {
                n: 50,
                shards: 4,
                estimates: vec![vec![0.25, -0.5, 0.75, 0.5], vec![0.1, 0.2, 0.7]],
                normalized: vec![vec![0.25, 0.0, 0.5, 0.25], vec![0.1, 0.2, 0.7]],
            }),
            Frame::Drain,
            Frame::DrainAck { n: 50 },
            Frame::Abort {
                code: 3,
                message: "boom".into(),
            },
            Frame::Epoch { round: 2 },
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        let mut buf = Vec::new();
        for frame in sample_frames() {
            encode_frame(&frame, &mut buf);
            let decoded = read_frame(&mut &buf[..]).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn a_stream_of_frames_decodes_in_order() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        let mut buf = Vec::new();
        for frame in &frames {
            encode_frame(frame, &mut buf);
            stream.extend_from_slice(&buf);
        }
        let mut reader = &stream[..];
        for frame in &frames {
            assert_eq!(&read_frame(&mut reader).unwrap(), frame);
        }
        assert!(matches!(read_frame(&mut reader), Err(WireError::Closed)));
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let mut buf = Vec::new();
        encode_frame(&Frame::DrainAck { n: 7 }, &mut buf);
        // Flipped payload bit → checksum.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::ChecksumMismatch { .. })
        ));
        // Flipped magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::BadMagic(_))
        ));
        // Future version.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::VersionMismatch { got: 9 })
        ));
        // Unknown frame type (CRC intact, so the type byte is reached).
        let mut bad = buf.clone();
        bad[6] = 99;
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::UnknownFrameType(99))
        ));
        // Oversize length is rejected before any allocation.
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(WireError::Oversize(_))
        ));
        // Every strict prefix is Closed (empty) or Truncated — never a panic.
        for cut in 0..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Err(WireError::Closed) => assert_eq!(cut, 0),
                Err(WireError::Truncated) => assert!(cut > 0),
                other => panic!("prefix of {cut} B: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn auth_fingerprint_is_stable_nonzero_and_separating() {
        assert_ne!(auth_fingerprint(""), 0);
        assert_eq!(auth_fingerprint("secret"), auth_fingerprint("secret"));
        assert_ne!(auth_fingerprint("secret"), auth_fingerprint("secret2"));
        assert_ne!(auth_fingerprint("secret"), auth_fingerprint(""));
    }

    #[test]
    fn batch_seq_encoder_matches_the_enum_encoder() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let mut batch = CompactBatch::new();
        for uid in 0..20u64 {
            batch.push(uid, &solution.report(&[0, 1], &mut rng));
        }
        let mut via_enum = Vec::new();
        encode_frame(
            &Frame::BatchSeq {
                seq: 42,
                batch: batch.clone(),
            },
            &mut via_enum,
        );
        let mut via_fast = Vec::new();
        encode_batch_seq_frame(42, &batch, &mut via_fast);
        assert_eq!(via_enum, via_fast);
    }

    #[test]
    fn a_short_batch_seq_payload_is_a_typed_payload_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&[0u8; 16]);
        buf.extend_from_slice(&[1, 2, 3]); // shorter than the u64 seq
        super::seal_frame(&mut buf, super::FT_BATCH_SEQ, 0);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::Payload(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check values (RFC 3720 appendix / zlib docs).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fingerprint_separates_solution_configurations() {
        let base = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let fp = solution_fingerprint(&base);
        assert_eq!(fp, solution_fingerprint(&base.clone()));
        for other in [
            SolutionKind::RsFd(RsFdProtocol::Grr)
                .build(&[4, 3], 2.0)
                .unwrap(),
            SolutionKind::RsFd(RsFdProtocol::Grr)
                .build(&[4, 5], 1.0)
                .unwrap(),
            SolutionKind::RsRfd(ldp_core::solutions::RsRfdProtocol::Grr)
                .build(&[4, 3], 1.0)
                .unwrap(),
        ] {
            assert_ne!(fp, solution_fingerprint(&other), "{}", other.name());
        }
    }

    #[test]
    fn snapshot_with_forged_dimensions_is_rejected() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Snapshot(WireSnapshot {
                n: 1,
                shards: 1,
                estimates: vec![vec![0.5; 3]],
                normalized: vec![vec![0.5; 3]],
            }),
            &mut buf,
        );
        // Forge the first row width (offset 16 header + 8 n + 4 shards + 4 d)
        // to a huge k and re-seal the CRC: the decoder must bail on the
        // missing words, not allocate for the claim.
        buf[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = crc32(&buf[16..]);
        buf[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::Payload(_))
        ));
    }
}
