//! The ingestion service: bounded channels in, sharded aggregators inside,
//! merged snapshots out.
//!
//! ## Channel topology
//!
//! ```text
//!  producers ──ingest(uid % shards)──►  [SyncSender]───►  worker 0 ─► shard 0
//!        (any number of threads;        [SyncSender]───►  worker 1 ─► shard 1
//!         senders are Sync —                 …                …          …
//!         one LdpServer is shared)      [SyncSender]───►  worker S ─► shard S
//! ```
//!
//! Every shard has its own **bounded** `sync_channel`; a full queue blocks
//! the producer (backpressure), so server-side memory stays flat no matter
//! how bursty the traffic is. Workers fold each envelope straight into their
//! shard's [`MultidimAggregator`] — reports are never buffered beyond the
//! queue — and the shards merge exactly (integer counts), which is what makes
//! the drained snapshot bit-identical to a batch pass regardless of shard
//! count and arrival order.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ldp_core::solutions::{DynSolution, MultidimAggregator, SolutionReport};

use crate::config::ServerConfig;
use crate::snapshot::ServerSnapshot;

/// One ingested message: the reporting user plus their sanitized report.
/// The `uid` only routes the envelope to a shard — the report itself is the
/// only thing the server state ever sees.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Stable user identifier (routing key; `uid % shards` picks the shard).
    pub uid: u64,
    /// The user's sanitized report.
    pub report: SolutionReport,
}

/// What flows through a shard channel.
enum Msg {
    /// Envelopes to absorb, in order.
    Batch(Vec<Envelope>),
    /// Barrier: acknowledge once every earlier message is absorbed.
    Sync(std::sync::mpsc::Sender<()>),
}

/// A running ingestion service over one collection solution.
///
/// Spawn it with [`LdpServer::spawn`], push sanitized reports through
/// [`LdpServer::ingest`] / [`LdpServer::ingest_batch`] (callable from any
/// number of producer threads — the sender side is `Sync`), observe the
/// running state with [`LdpServer::snapshot`], and finish with
/// [`LdpServer::drain`]. See the [module docs](crate::service) for the
/// channel topology and the determinism argument.
#[derive(Debug)]
pub struct LdpServer {
    solution: DynSolution,
    config: ServerConfig,
    txs: Vec<SyncSender<Msg>>,
    workers: Vec<JoinHandle<()>>,
    shards: Arc<Vec<Mutex<MultidimAggregator>>>,
}

impl LdpServer {
    /// Starts `config.shards` worker threads, each owning one aggregator
    /// shard behind a bounded channel.
    pub fn spawn(solution: DynSolution, config: ServerConfig) -> Self {
        let config = config.sanitized();
        let shards: Arc<Vec<Mutex<MultidimAggregator>>> = Arc::new(
            (0..config.shards)
                .map(|_| Mutex::new(solution.aggregator()))
                .collect(),
        );
        let mut txs = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel::<Msg>(config.queue_depth);
            let state = Arc::clone(&shards);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ldp-shard-{shard}"))
                    .spawn(move || worker_loop(shard, &rx, &state))
                    .expect("cannot spawn ingestion worker"),
            );
            txs.push(tx);
        }
        LdpServer {
            solution,
            config,
            txs,
            workers,
            shards,
        }
    }

    /// The solution this server aggregates for.
    pub fn solution(&self) -> &DynSolution {
        &self.solution
    }

    /// The (sanitized) configuration the server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shard an envelope with this `uid` is routed to.
    pub fn shard_of(&self, uid: u64) -> usize {
        (uid % self.config.shards as u64) as usize
    }

    /// Ingests one envelope, blocking while the target shard's queue is full
    /// (backpressure). Prefer [`LdpServer::ingest_batch`] on hot paths — one
    /// channel message per envelope is the slow road.
    ///
    /// # Panics
    /// Panics when the target worker has died (it panicked absorbing an
    /// earlier report, e.g. one of a foreign solution's shape).
    pub fn ingest(&self, envelope: Envelope) {
        let shard = self.shard_of(envelope.uid);
        self.txs[shard]
            .send(Msg::Batch(vec![envelope]))
            .expect("ingestion worker disconnected (did it panic?)");
    }

    /// Ingests a batch: envelopes are grouped per shard (preserving their
    /// relative order) and sent as at most `⌈len / config.batch⌉` messages
    /// per shard. Blocks whenever a shard queue is full.
    ///
    /// # Panics
    /// Panics when a target worker has died.
    pub fn ingest_batch(&self, envelopes: impl IntoIterator<Item = Envelope>) {
        let batch = self.config.batch;
        let mut buffers: Vec<Vec<Envelope>> = (0..self.config.shards)
            .map(|_| Vec::with_capacity(batch))
            .collect();
        for envelope in envelopes {
            let shard = self.shard_of(envelope.uid);
            buffers[shard].push(envelope);
            if buffers[shard].len() >= batch {
                let full = std::mem::replace(&mut buffers[shard], Vec::with_capacity(batch));
                self.txs[shard]
                    .send(Msg::Batch(full))
                    .expect("ingestion worker disconnected (did it panic?)");
            }
        }
        for (shard, rest) in buffers.into_iter().enumerate() {
            if !rest.is_empty() {
                self.txs[shard]
                    .send(Msg::Batch(rest))
                    .expect("ingestion worker disconnected (did it panic?)");
            }
        }
    }

    /// Blocks until every envelope ingested *before* this call has been
    /// absorbed into its shard (channel FIFO barrier). Useful before a
    /// [`LdpServer::snapshot`] that must reflect a known prefix of the
    /// traffic; plain monitoring snapshots don't need it.
    pub fn quiesce(&self) {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        for tx in &self.txs {
            tx.send(Msg::Sync(ack_tx.clone()))
                .expect("ingestion worker disconnected (did it panic?)");
        }
        drop(ack_tx);
        for _ in 0..self.txs.len() {
            ack_rx
                .recv()
                .expect("ingestion worker dropped the sync barrier");
        }
    }

    /// Merged view of everything absorbed so far, while ingestion keeps
    /// running. Pair with [`LdpServer::quiesce`] when the snapshot must
    /// cover an exact set of ingested envelopes.
    pub fn snapshot(&self) -> ServerSnapshot {
        let shards: Vec<MultidimAggregator> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned by a worker panic").clone())
            .collect();
        ServerSnapshot::merge(self.solution.aggregator(), &shards)
    }

    /// Graceful shutdown: closes every shard channel, waits for the workers
    /// to absorb their remaining queue, and returns the final merged
    /// snapshot. Bit-identical to a batch pass over every ingested report.
    ///
    /// # Panics
    /// Panics when a worker thread panicked.
    pub fn drain(self) -> ServerSnapshot {
        let LdpServer {
            solution,
            txs,
            workers,
            shards,
            ..
        } = self;
        drop(txs);
        for worker in workers {
            worker.join().expect("ingestion worker panicked");
        }
        let shards = Arc::try_unwrap(shards)
            .expect("worker threads exited but still hold shard state")
            .into_iter()
            .map(|m| m.into_inner().expect("shard poisoned by a worker panic"))
            .collect::<Vec<_>>();
        ServerSnapshot::merge(solution.aggregator(), &shards)
    }
}

/// One worker: receive messages in order, fold batches into the shard,
/// acknowledge barriers. Exits when every sender is gone.
fn worker_loop(shard: usize, rx: &Receiver<Msg>, state: &[Mutex<MultidimAggregator>]) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Batch(batch) => {
                // One lock per message, not per report: snapshots interleave
                // between messages, never inside one.
                let mut agg = state[shard].lock().expect("shard poisoned");
                for envelope in &batch {
                    agg.absorb(&envelope.report);
                }
            }
            Msg::Sync(ack) => {
                // Channel FIFO: everything sent before the barrier is
                // already absorbed. A dropped receiver just means the
                // barrier caller gave up waiting.
                let _ = ack.send(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{RsFdProtocol, SolutionKind};
    use ldp_protocols::hash::mix2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn envelopes(solution: &DynSolution, n: u64, seed: u64) -> Vec<Envelope> {
        (0..n)
            .map(|uid| {
                let mut rng = StdRng::seed_from_u64(mix2(seed, uid));
                Envelope {
                    uid,
                    report: solution.report(&[uid as u32 % 4, uid as u32 % 3], &mut rng),
                }
            })
            .collect()
    }

    #[test]
    fn drain_matches_sequential_reference_for_every_shard_count() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let envs = envelopes(&solution, 500, 9);
        let mut reference = solution.aggregator();
        for e in &envs {
            reference.absorb(&e.report);
        }
        for shards in [1usize, 2, 5] {
            let server = LdpServer::spawn(
                solution.clone(),
                ServerConfig::default().shards(shards).batch(64),
            );
            server.ingest_batch(envs.iter().cloned());
            let snap = server.drain();
            assert_eq!(snap.n, 500, "shards={shards}");
            assert_eq!(snap.aggregator.counts(), reference.counts());
        }
    }

    #[test]
    fn quiesced_snapshot_covers_everything_sent() {
        let solution = SolutionKind::Smp(ldp_protocols::ProtocolKind::Grr)
            .build(&[4, 3], 2.0)
            .unwrap();
        let envs = envelopes(&solution, 300, 4);
        let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(3));
        server.ingest_batch(envs[..120].iter().cloned());
        server.quiesce();
        let mid = server.snapshot();
        assert_eq!(mid.n, 120);
        let mut reference = solution.aggregator();
        for e in &envs[..120] {
            reference.absorb(&e.report);
        }
        assert_eq!(mid.aggregator.counts(), reference.counts());
        server.ingest_batch(envs[120..].iter().cloned());
        assert_eq!(server.drain().n, 300);
    }

    #[test]
    fn single_envelope_ingest_works_under_backpressure() {
        // Tiny queue + tiny batches: every send exercises the bounded path.
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = LdpServer::spawn(
            solution.clone(),
            ServerConfig::default().shards(2).queue_depth(1).batch(1),
        );
        for e in envelopes(&solution, 200, 11) {
            server.ingest(e);
        }
        assert_eq!(server.drain().n, 200);
    }

    #[test]
    fn empty_drain_yields_valid_snapshot() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = LdpServer::spawn(solution, ServerConfig::default().shards(4));
        let snap = server.drain();
        assert_eq!(snap.n, 0);
        assert!(snap.estimates.iter().flatten().all(|f| f.is_finite()));
        assert!(snap.normalized.iter().flatten().all(|f| *f == 0.0));
    }

    #[test]
    fn shard_routing_is_stable() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = LdpServer::spawn(solution, ServerConfig::default().shards(3));
        assert_eq!(server.shard_of(0), 0);
        assert_eq!(server.shard_of(4), 1);
        assert_eq!(server.shard_of(5), 2);
        server.drain();
    }
}
