//! The ingestion service: bounded channels in, worker-owned shards inside,
//! merged snapshots out.
//!
//! ## Channel topology
//!
//! ```text
//!  producers ──ingest(uid % shards)──►  [SyncSender]───►  worker 0 (owns shard 0)
//!        (any number of threads;        [SyncSender]───►  worker 1 (owns shard 1)
//!         senders are Sync —                 …                …
//!         one LdpServer is shared)      [SyncSender]───►  worker S (owns shard S)
//! ```
//!
//! Every shard has its own **bounded** `sync_channel`; a full queue blocks
//! the producer (backpressure), so server-side memory stays flat no matter
//! how bursty the traffic is. Each worker **owns** its
//! [`MultidimAggregator`] shard outright — no aggregation state is ever
//! behind a lock — and every cross-thread interaction is a message: batches
//! and single reports fold straight into the owned shard,
//! [`LdpServer::snapshot`] requests a clone of each shard through a reply
//! channel, and [`LdpServer::drain`] collects the shards as the workers'
//! join values. The shards merge exactly (integer counts), which is what
//! makes the drained snapshot bit-identical to a batch pass regardless of
//! shard count and arrival order.
//!
//! ## Allocation budget
//!
//! Batched reports cross the channel as
//! [`CompactBatch`]es — flat `u64` buffers
//! that the workers recycle back to the producers through bounded
//! **per-shard** buffer pools after absorbing them (support is counted
//! directly from the encoded words, never by rematerializing reports).
//! Steady-state batched ingestion therefore allocates nothing on either
//! side of the channel (with more than `POOL_SLACK_PER_SHARD` concurrent
//! producers the overflow buffers are dropped and reallocated — amortized
//! per batch, never per report). The pool mutexes are the only shared
//! state on the ingest path, touched once per batch *message* and never
//! shared across shards. The unbatched [`LdpServer::ingest`] sends its
//! envelope as a dedicated single-report message rather than wrapping it in
//! a one-element batch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ldp_core::solutions::{CompactBatch, DynSolution, MultidimAggregator, SolutionReport};

use crate::config::ServerConfig;
use crate::snapshot::{EpochSnapshot, ServerSnapshot};

/// Recycled batch buffers kept around per shard — sized to cover one
/// in-flight buffer per concurrent producer for typical producer counts
/// (≤ 8 per shard). Anything beyond this is simply dropped and lazily
/// reallocated, so with more producers the recycling degrades to amortized
/// per-batch (never per-report) allocation; the pool is an optimization,
/// not a correctness surface.
const POOL_SLACK_PER_SHARD: usize = 8;

/// One ingested message: the reporting user plus their sanitized report.
/// The `uid` only routes the envelope to a shard — the report itself is the
/// only thing the server state ever sees.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Stable user identifier (routing key; `uid % shards` picks the shard).
    pub uid: u64,
    /// The user's sanitized report.
    pub report: SolutionReport,
}

/// What flows through a shard channel.
enum Msg {
    /// A single envelope (the unbatched [`LdpServer::ingest`] path).
    One(Envelope),
    /// A compact-encoded batch of envelopes, in order.
    Batch(CompactBatch),
    /// Barrier: acknowledge once every earlier message is absorbed.
    Sync(Sender<()>),
    /// Reply with a clone of the worker's shard state at this point of its
    /// queue (the estimate-while-ingesting snapshot protocol).
    Snapshot(Sender<MultidimAggregator>),
    /// Epoch rotation: swap the worker's shard for the supplied fresh one
    /// and hand the closed shard back — the per-epoch windowed-aggregation
    /// protocol (channel FIFO scopes the closed shard to exactly the
    /// messages sent before the rotation).
    Rotate {
        /// Empty aggregator the worker adopts for the next epoch.
        fresh: MultidimAggregator,
        /// Where the closed epoch's shard is sent.
        reply: Sender<MultidimAggregator>,
    },
}

/// A running ingestion service over one collection solution.
///
/// Spawn it with [`LdpServer::spawn`], push sanitized reports through
/// [`LdpServer::ingest`] / [`LdpServer::ingest_batch`] (callable from any
/// number of producer threads — the sender side is `Sync`), observe the
/// running state with [`LdpServer::snapshot`], and finish with
/// [`LdpServer::drain`]. See the [module docs](crate::service) for the
/// channel topology, the allocation budget and the determinism argument.
#[derive(Debug)]
pub struct LdpServer {
    solution: DynSolution,
    config: ServerConfig,
    txs: Vec<SyncSender<Msg>>,
    workers: Vec<JoinHandle<MultidimAggregator>>,
    /// Per-shard pools of drained batch buffers returned by the workers for
    /// producer reuse (shard `s`'s worker only ever touches `pools[s]`).
    pools: Arc<Vec<Mutex<Vec<CompactBatch>>>>,
    /// Cumulative aggregate over every **closed** epoch. Live shards hold
    /// only the current epoch, so `closed + live shards` is always the full
    /// collection — starting empty, which is why single-epoch callers see
    /// bit-identical snapshots to the pre-epoch server.
    closed: Mutex<MultidimAggregator>,
    /// Retention ring of the last `config.retain` closed epochs' windowed
    /// snapshots, oldest first.
    ring: Mutex<VecDeque<EpochSnapshot>>,
    /// Index of the epoch currently being collected.
    epoch: AtomicU64,
}

/// Clears `buffer` and returns it to `pool` unless the pool is full (beyond
/// [`POOL_SLACK_PER_SHARD`] buffers it is simply dropped — the pool is an
/// optimization, not a correctness surface). The single recycling rule
/// shared by the producers and the workers.
fn recycle_buffer(pool: &Mutex<Vec<CompactBatch>>, mut buffer: CompactBatch) {
    buffer.clear();
    if let Ok(mut pool) = pool.lock() {
        if pool.len() < POOL_SLACK_PER_SHARD {
            pool.push(buffer);
        }
    }
}

impl LdpServer {
    /// Starts `config.shards` worker threads, each owning one aggregator
    /// shard behind a bounded channel.
    pub fn spawn(solution: DynSolution, config: ServerConfig) -> Self {
        let config = config.sanitized();
        let pools: Arc<Vec<Mutex<Vec<CompactBatch>>>> =
            Arc::new((0..config.shards).map(|_| Mutex::new(Vec::new())).collect());
        let mut txs = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel::<Msg>(config.queue_depth);
            let aggregator = solution.aggregator();
            let pools = Arc::clone(&pools);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ldp-shard-{shard}"))
                    .spawn(move || worker_loop(&rx, aggregator, &pools[shard]))
                    .expect("cannot spawn ingestion worker"),
            );
            txs.push(tx);
        }
        let closed = Mutex::new(solution.aggregator());
        LdpServer {
            solution,
            config,
            txs,
            workers,
            pools,
            closed,
            ring: Mutex::new(VecDeque::new()),
            epoch: AtomicU64::new(0),
        }
    }

    /// The solution this server aggregates for.
    pub fn solution(&self) -> &DynSolution {
        &self.solution
    }

    /// The (sanitized) configuration the server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shard an envelope with this `uid` is routed to.
    pub fn shard_of(&self, uid: u64) -> usize {
        (uid % self.config.shards as u64) as usize
    }

    /// Ingests one envelope as a single-report message, blocking while the
    /// target shard's queue is full (backpressure). No batch wrapper is
    /// allocated; prefer [`LdpServer::ingest_batch`] on hot paths anyway —
    /// one channel message per envelope is the slow road.
    ///
    /// # Panics
    /// Panics when the target worker has died (it panicked absorbing an
    /// earlier report, e.g. one of a foreign solution's shape).
    pub fn ingest(&self, envelope: Envelope) {
        let shard = self.shard_of(envelope.uid);
        self.txs[shard]
            .send(Msg::One(envelope))
            .expect("ingestion worker disconnected (did it panic?)");
    }

    /// Ingests a batch: envelopes are compact-encoded into per-shard
    /// (pool-recycled) buffers, preserving their relative order, and sent as
    /// at most `⌈len / config.batch⌉` messages per shard. Blocks whenever a
    /// shard queue is full.
    ///
    /// # Panics
    /// Panics when a target worker has died.
    pub fn ingest_batch(&self, envelopes: impl IntoIterator<Item = Envelope>) {
        let batch = self.config.batch;
        let mut buffers: Vec<CompactBatch> = (0..self.config.shards)
            .map(|shard| self.pooled_buffer(shard))
            .collect();
        for envelope in envelopes {
            let shard = self.shard_of(envelope.uid);
            buffers[shard].push(envelope.uid, &envelope.report);
            if buffers[shard].len() >= batch {
                let full = std::mem::replace(&mut buffers[shard], self.pooled_buffer(shard));
                self.txs[shard]
                    .send(Msg::Batch(full))
                    .expect("ingestion worker disconnected (did it panic?)");
            }
        }
        for (shard, rest) in buffers.into_iter().enumerate() {
            if !rest.is_empty() {
                self.txs[shard]
                    .send(Msg::Batch(rest))
                    .expect("ingestion worker disconnected (did it panic?)");
            } else {
                recycle_buffer(&self.pools[shard], rest);
            }
        }
    }

    /// Blocks until every envelope ingested *before* this call has been
    /// absorbed into its shard (channel FIFO barrier). Useful before a
    /// [`LdpServer::snapshot`] that must reflect a known prefix of the
    /// traffic; plain monitoring snapshots don't need it.
    pub fn quiesce(&self) {
        let (ack_tx, ack_rx) = std::sync::mpsc::channel();
        for tx in &self.txs {
            tx.send(Msg::Sync(ack_tx.clone()))
                .expect("ingestion worker disconnected (did it panic?)");
        }
        drop(ack_tx);
        for _ in 0..self.txs.len() {
            ack_rx
                .recv()
                .expect("ingestion worker dropped the sync barrier");
        }
    }

    /// Merged view of everything absorbed so far, while ingestion keeps
    /// running: each worker replies with a clone of its owned shard at its
    /// current queue position (no lock is ever taken). Pair with
    /// [`LdpServer::quiesce`] when the snapshot must cover an exact set of
    /// ingested envelopes.
    ///
    /// # Panics
    /// Panics when a worker has died.
    pub fn snapshot(&self) -> ServerSnapshot {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        for tx in &self.txs {
            tx.send(Msg::Snapshot(reply_tx.clone()))
                .expect("ingestion worker disconnected (did it panic?)");
        }
        drop(reply_tx);
        let shards: Vec<MultidimAggregator> = (0..self.txs.len())
            .map(|_| {
                reply_rx
                    .recv()
                    .expect("ingestion worker dropped the snapshot reply")
            })
            .collect();
        // Reply order is arbitrary; the merge is exact integer addition, so
        // the snapshot is independent of it. Closed epochs re-enter through
        // the cumulative base (empty until the first rotation).
        let base = self.closed.lock().expect("epoch state poisoned").clone();
        ServerSnapshot::merge(base, &shards)
    }

    /// Closes the current collection epoch: every worker swaps its shard
    /// for a fresh one (channel FIFO scopes the closed shards to exactly
    /// the envelopes ingested before this call — quiesce semantics are
    /// built in), the closed shards merge into one windowed
    /// [`EpochSnapshot`] pushed onto the retention ring, and their counts
    /// fold into the cumulative aggregate so [`LdpServer::snapshot`] /
    /// [`LdpServer::drain`] keep covering the full collection. Returns the
    /// closed epoch's snapshot.
    ///
    /// Callers coordinating several producers must stop ingesting for the
    /// closing epoch *before* advancing — the wire tier's EPOCH barrier
    /// (see `ldp_server::net`) does exactly that for remote fleets.
    ///
    /// # Panics
    /// Panics when a worker has died.
    pub fn advance_epoch(&self) -> EpochSnapshot {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        for tx in &self.txs {
            tx.send(Msg::Rotate {
                fresh: self.solution.aggregator(),
                reply: reply_tx.clone(),
            })
            .expect("ingestion worker disconnected (did it panic?)");
        }
        drop(reply_tx);
        let shards: Vec<MultidimAggregator> = (0..self.txs.len())
            .map(|_| {
                reply_rx
                    .recv()
                    .expect("ingestion worker dropped the rotation reply")
            })
            .collect();
        let snapshot = ServerSnapshot::merge(self.solution.aggregator(), &shards);
        {
            let mut closed = self.closed.lock().expect("epoch state poisoned");
            for shard in &shards {
                closed.merge(shard);
            }
        }
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst);
        let entry = EpochSnapshot { epoch, snapshot };
        let mut ring = self.ring.lock().expect("epoch ring poisoned");
        ring.push_back(entry.clone());
        while ring.len() > self.config.retain {
            ring.pop_front();
        }
        entry
    }

    /// Index of the epoch currently being collected (0 before the first
    /// [`LdpServer::advance_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The retained closed-epoch snapshots, oldest first — at most
    /// `config.retain` entries (the windowed-query surface).
    pub fn epochs(&self) -> Vec<EpochSnapshot> {
        self.ring
            .lock()
            .expect("epoch ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Graceful shutdown: closes every shard channel, waits for the workers
    /// to absorb their remaining queue, and merges the shard states they
    /// hand back as join values. Bit-identical to a batch pass over every
    /// ingested report.
    ///
    /// # Panics
    /// Panics when a worker thread panicked.
    pub fn drain(self) -> ServerSnapshot {
        let LdpServer {
            txs,
            workers,
            closed,
            ..
        } = self;
        drop(txs);
        let shards: Vec<MultidimAggregator> = workers
            .into_iter()
            .map(|worker| worker.join().expect("ingestion worker panicked"))
            .collect();
        let base = closed
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ServerSnapshot::merge(base, &shards)
    }

    /// A cleared batch buffer for `shard`, recycled from its pool when one
    /// is available.
    fn pooled_buffer(&self, shard: usize) -> CompactBatch {
        self.pools[shard]
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }
}

/// One worker: receive messages in order, fold reports into the **owned**
/// shard, recycle drained batch buffers, answer barriers and snapshot
/// requests. Exits when every sender is gone, handing the shard back as the
/// thread's join value.
fn worker_loop(
    rx: &Receiver<Msg>,
    mut aggregator: MultidimAggregator,
    pool: &Mutex<Vec<CompactBatch>>,
) -> MultidimAggregator {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::One(envelope) => aggregator.absorb(&envelope.report),
            Msg::Batch(batch) => {
                aggregator.absorb_compact(&batch);
                recycle_buffer(pool, batch);
            }
            Msg::Sync(ack) => {
                // Channel FIFO: everything sent before the barrier is
                // already absorbed. A dropped receiver just means the
                // barrier caller gave up waiting.
                let _ = ack.send(());
            }
            Msg::Snapshot(reply) => {
                let _ = reply.send(aggregator.clone());
            }
            Msg::Rotate { fresh, reply } => {
                let closed = std::mem::replace(&mut aggregator, fresh);
                let _ = reply.send(closed);
            }
        }
    }
    aggregator
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{RsFdProtocol, SolutionKind};
    use ldp_protocols::hash::mix2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn envelopes(solution: &DynSolution, n: u64, seed: u64) -> Vec<Envelope> {
        (0..n)
            .map(|uid| {
                let mut rng = StdRng::seed_from_u64(mix2(seed, uid));
                Envelope {
                    uid,
                    report: solution.report(&[uid as u32 % 4, uid as u32 % 3], &mut rng),
                }
            })
            .collect()
    }

    #[test]
    fn drain_matches_sequential_reference_for_every_shard_count() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let envs = envelopes(&solution, 500, 9);
        let mut reference = solution.aggregator();
        for e in &envs {
            reference.absorb(&e.report);
        }
        for shards in [1usize, 2, 5] {
            let server = LdpServer::spawn(
                solution.clone(),
                ServerConfig::default().shards(shards).batch(64),
            );
            server.ingest_batch(envs.iter().cloned());
            let snap = server.drain();
            assert_eq!(snap.n, 500, "shards={shards}");
            assert_eq!(snap.aggregator.counts(), reference.counts());
        }
    }

    #[test]
    fn quiesced_snapshot_covers_everything_sent() {
        let solution = SolutionKind::Smp(ldp_protocols::ProtocolKind::Grr)
            .build(&[4, 3], 2.0)
            .unwrap();
        let envs = envelopes(&solution, 300, 4);
        let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(3));
        server.ingest_batch(envs[..120].iter().cloned());
        server.quiesce();
        let mid = server.snapshot();
        assert_eq!(mid.n, 120);
        let mut reference = solution.aggregator();
        for e in &envs[..120] {
            reference.absorb(&e.report);
        }
        assert_eq!(mid.aggregator.counts(), reference.counts());
        server.ingest_batch(envs[120..].iter().cloned());
        assert_eq!(server.drain().n, 300);
    }

    #[test]
    fn single_envelope_ingest_works_under_backpressure() {
        // Tiny queue + tiny batches: every send exercises the bounded path.
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = LdpServer::spawn(
            solution.clone(),
            ServerConfig::default().shards(2).queue_depth(1).batch(1),
        );
        for e in envelopes(&solution, 200, 11) {
            server.ingest(e);
        }
        assert_eq!(server.drain().n, 200);
    }

    #[test]
    fn mixed_single_and_batched_ingest_absorb_everything() {
        // Msg::One and Msg::Batch interleave on the same shard queues.
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let envs = envelopes(&solution, 400, 13);
        let mut reference = solution.aggregator();
        for e in &envs {
            reference.absorb(&e.report);
        }
        let server = LdpServer::spawn(solution, ServerConfig::default().shards(3).batch(32));
        for (i, chunk) in envs.chunks(100).enumerate() {
            if i % 2 == 0 {
                for e in chunk {
                    server.ingest(e.clone());
                }
            } else {
                server.ingest_batch(chunk.iter().cloned());
            }
        }
        let snap = server.drain();
        assert_eq!(snap.n, 400);
        assert_eq!(snap.aggregator.counts(), reference.counts());
    }

    #[test]
    fn empty_drain_yields_valid_snapshot() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = LdpServer::spawn(solution, ServerConfig::default().shards(4));
        let snap = server.drain();
        assert_eq!(snap.n, 0);
        assert!(snap.estimates.iter().flatten().all(|f| f.is_finite()));
        assert!(snap.normalized.iter().flatten().all(|f| *f == 0.0));
    }

    #[test]
    fn shard_routing_is_stable() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = LdpServer::spawn(solution, ServerConfig::default().shards(3));
        assert_eq!(server.shard_of(0), 0);
        assert_eq!(server.shard_of(4), 1);
        assert_eq!(server.shard_of(5), 2);
        server.drain();
    }

    #[test]
    fn epoch_ring_windows_are_exact_and_cumulative_state_survives() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let envs = envelopes(&solution, 600, 23);
        let server = LdpServer::spawn(
            solution.clone(),
            ServerConfig::default().shards(3).batch(32).retain(2),
        );
        assert_eq!(server.epoch(), 0);
        for (e, chunk) in envs.chunks(200).enumerate() {
            server.ingest_batch(chunk.iter().cloned());
            let closed = server.advance_epoch();
            assert_eq!(closed.epoch, e as u64);
            // The windowed snapshot covers exactly this epoch's envelopes.
            let mut reference = solution.aggregator();
            for envelope in chunk {
                reference.absorb(&envelope.report);
            }
            assert_eq!(closed.snapshot.n, 200);
            assert_eq!(closed.snapshot.aggregator.counts(), reference.counts());
        }
        assert_eq!(server.epoch(), 3);
        // Retention: only the last `retain` epochs stay queryable.
        let retained = server.epochs();
        assert_eq!(retained.len(), 2);
        assert_eq!(
            retained.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // The cumulative drain still covers every epoch, bit-identically to
        // a batch pass — rotation never loses or double-counts a report.
        let mut reference = solution.aggregator();
        for e in &envs {
            reference.absorb(&e.report);
        }
        let snap = server.drain();
        assert_eq!(snap.n, 600);
        assert_eq!(snap.aggregator.counts(), reference.counts());
    }

    #[test]
    fn mid_epoch_snapshot_merges_closed_and_live_state() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let envs = envelopes(&solution, 300, 29);
        let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(2));
        server.ingest_batch(envs[..100].iter().cloned());
        server.advance_epoch();
        server.ingest_batch(envs[100..].iter().cloned());
        server.quiesce();
        let snap = server.snapshot();
        let mut reference = solution.aggregator();
        for e in &envs {
            reference.absorb(&e.report);
        }
        assert_eq!(snap.n, 300);
        assert_eq!(snap.aggregator.counts(), reference.counts());
        server.drain();
    }

    #[test]
    fn batch_buffers_are_recycled_through_the_pool() {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[4, 3], 1.0)
            .unwrap();
        let server = LdpServer::spawn(
            solution.clone(),
            ServerConfig::default().shards(2).batch(16),
        );
        server.ingest_batch(envelopes(&solution, 256, 17));
        server.quiesce();
        // After quiescing, the workers have returned their drained buffers.
        let pooled = |server: &LdpServer| -> usize {
            server.pools.iter().map(|p| p.lock().unwrap().len()).sum()
        };
        assert!(
            pooled(&server) > 0,
            "drained batch buffers must land back in the pools"
        );
        // A second pass reuses them rather than growing the pools without
        // bound (each shard's pool is individually capped).
        server.ingest_batch(envelopes(&solution, 256, 18));
        server.quiesce();
        assert!(pooled(&server) <= server.config.shards * POOL_SLACK_PER_SHARD);
        assert_eq!(server.drain().n, 512);
    }
}
