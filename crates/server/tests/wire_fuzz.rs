//! Fuzz-style robustness properties of the wire layer: mutated, truncated
//! and garbage byte streams must always come back as typed [`WireError`]s —
//! never a panic, and never a silently mis-decoded frame — both at the
//! codec level ([`read_frame`] over raw bytes) and end-to-end against a live
//! [`WireServer`], which must additionally keep its aggregate clean.

use std::io::Write;
use std::net::TcpStream;

use ldp_core::solutions::{CompactBatch, MixedKind, RsFdProtocol, SolutionKind};
use ldp_core::NumericKind;
use ldp_protocols::ProtocolKind;
use ldp_server::wire::{
    encode_frame, read_frame, solution_fingerprint, write_frame, Frame, WireError, WireSnapshot,
};
use ldp_server::{ServerConfig, WireServer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A representative valid session's byte stream (handshake, batches, a
/// snapshot exchange, drain) to mutate.
fn session_bytes(seed: u64, reports: u64) -> Vec<u8> {
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[5, 3, 4], 1.5)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::new();
    let mut buf = Vec::new();
    let mut frames = vec![Frame::Hello {
        fingerprint: solution_fingerprint(&solution),
        auth: 0,
    }];
    let mut batch = CompactBatch::new();
    for uid in 0..reports {
        batch.push(uid, &solution.report(&[1, 2, 3], &mut rng));
    }
    frames.push(Frame::Batch(batch));
    frames.push(Frame::SnapshotRequest { quiesce: true });
    frames.push(Frame::Snapshot(WireSnapshot {
        n: reports,
        shards: 2,
        estimates: vec![vec![0.2; 5], vec![0.33; 3], vec![0.25; 4]],
        normalized: vec![vec![0.2; 5], vec![0.33; 3], vec![0.25; 4]],
    }));
    frames.push(Frame::Drain);
    for frame in &frames {
        encode_frame(frame, &mut buf);
        stream.extend_from_slice(&buf);
    }
    stream
}

/// A valid mixed-solution session's byte stream (heterogeneous schema with
/// numeric dimensions) to mutate.
fn mixed_session_bytes(seed: u64, reports: u64) -> Vec<u8> {
    let solution = SolutionKind::Mixed(MixedKind {
        protocol: ProtocolKind::Grr,
        numeric: NumericKind::Piecewise,
        sample_k: 2,
    })
    .build(&[5, 3, 0, 0], 1.5)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::new();
    let mut buf = Vec::new();
    let mut frames = vec![Frame::Hello {
        fingerprint: solution_fingerprint(&solution),
        auth: 0,
    }];
    let mut batch = CompactBatch::new();
    for uid in 0..reports {
        let report = solution
            .report_mixed(&[1, 2], &[0.25, -0.5], &mut rng)
            .unwrap();
        batch.push(uid, &report);
    }
    frames.push(Frame::Batch(batch));
    frames.push(Frame::Drain);
    for frame in &frames {
        encode_frame(frame, &mut buf);
        stream.extend_from_slice(&buf);
    }
    stream
}

/// Reads frames until the stream errors or ends; the property under test is
/// simply that this terminates without panicking.
fn drain_stream(bytes: &[u8]) -> (usize, Option<WireError>) {
    let mut reader = bytes;
    let mut decoded = 0usize;
    loop {
        match read_frame(&mut reader) {
            Ok(_) => decoded += 1,
            Err(WireError::Closed) => return (decoded, None),
            Err(e) => return (decoded, Some(e)),
        }
    }
}

/// The HELLO fingerprint separates mixed solutions that differ only in the
/// numeric mechanism or the per-user sample budget, and a live server
/// rejects such a producer at handshake.
#[test]
fn mixed_fingerprint_covers_numeric_mechanism_and_schema() {
    let build = |numeric, sample_k| {
        SolutionKind::Mixed(MixedKind {
            protocol: ProtocolKind::Grr,
            numeric,
            sample_k,
        })
        .build(&[5, 3, 0, 0], 1.5)
        .unwrap()
    };
    let pm = build(NumericKind::Piecewise, 2);
    let duchi = build(NumericKind::Duchi, 2);
    let pm_k1 = build(NumericKind::Piecewise, 1);
    assert_ne!(
        solution_fingerprint(&pm),
        solution_fingerprint(&duchi),
        "numeric mechanism must be part of the fingerprint"
    );
    assert_ne!(
        solution_fingerprint(&pm),
        solution_fingerprint(&pm_k1),
        "sample budget must be part of the fingerprint"
    );

    // A producer sanitizing with Duchi must not get past HELLO on a PM
    // server: the mismatch would silently bias every numeric mean.
    let server = WireServer::bind("127.0.0.1:0", pm, ServerConfig::default().shards(2)).unwrap();
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_frame(
        &mut writer,
        &Frame::Hello {
            fingerprint: solution_fingerprint(&duchi),
            auth: 0,
        },
    )
    .unwrap();
    writer.flush().unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::Abort { message, .. } => assert!(
            message.contains("fingerprint"),
            "abort should name the fingerprint mismatch: {message}"
        ),
        other => panic!("expected ABORT at handshake, got {other:?}"),
    }
    assert_eq!(server.finish().n, 0);
}

/// Forged RESUME tokens against a live server are rejected with a typed
/// ABORT — no panic, no hijack — and a clean producer running alongside
/// drains exactly; the aggregate never absorbs anything from the forgers.
#[test]
fn forged_resume_tokens_never_hijack_a_session() {
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[5, 3, 4], 1.5)
        .unwrap();
    let server = WireServer::bind(
        "127.0.0.1:0",
        solution.clone(),
        ServerConfig::default().shards(2),
    )
    .unwrap();
    let fingerprint = solution_fingerprint(&solution);

    // A clean producer holds an open session while the forgers probe.
    let clean = TcpStream::connect(server.local_addr()).unwrap();
    let mut clean_reader = std::io::BufReader::new(clean.try_clone().unwrap());
    let mut clean_writer = clean;
    write_frame(
        &mut clean_writer,
        &Frame::Hello {
            fingerprint,
            auth: 0,
        },
    )
    .unwrap();
    clean_writer.flush().unwrap();
    let clean_session = match read_frame(&mut clean_reader).unwrap() {
        Frame::HelloAck { session, .. } => session,
        other => panic!("expected HELLO_ACK, got {other:?}"),
    };
    let mut rng = StdRng::seed_from_u64(0xF06);
    let mut batch = CompactBatch::new();
    for uid in 0..30u64 {
        batch.push(uid, &solution.report(&[0, 1, 2], &mut rng));
    }
    write_frame(&mut clean_writer, &Frame::BatchSeq { seq: 1, batch }).unwrap();
    clean_writer.flush().unwrap();

    // Forgers: random tokens, the zero sentinel, and the clean producer's
    // own (still-owned) token — every probe must come back as an ABORT.
    let mut probe_rng = 0x5EED_u64;
    let mut probes: Vec<(u64, u64)> = (0..8)
        .map(|_| {
            probe_rng = probe_rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            (probe_rng, probe_rng >> 32)
        })
        .collect();
    probes.push((0, 0));
    probes.push((clean_session, 99));
    for (session, last_acked) in probes {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint,
                auth: 0,
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::HelloAck { .. }
        ));
        write_frame(
            &mut writer,
            &Frame::Resume {
                session,
                last_acked,
            },
        )
        .unwrap();
        writer.flush().unwrap();
        match read_frame(&mut reader).unwrap() {
            Frame::Abort { .. } => {}
            other => panic!("forged RESUME {session:#x} must abort, got {other:?}"),
        }
    }

    // The clean session is untouched by the probes: it finishes its drain
    // and the aggregate holds exactly its reports.
    write_frame(&mut clean_writer, &Frame::Drain).unwrap();
    clean_writer.flush().unwrap();
    loop {
        match read_frame(&mut clean_reader).unwrap() {
            Frame::BatchAck { .. } => continue,
            Frame::DrainAck { n } => {
                assert_eq!(n, 30);
                break;
            }
            other => panic!("expected DRAIN_ACK, got {other:?}"),
        }
    }
    server.wait_for_producers(1);
    assert_eq!(server.finish().n, 30);
}

/// Replayed and out-of-order sequence numbers never double-ingest: a
/// duplicated BATCH_SEQ is discarded silently, a gapped one ABORTs the
/// connection, and the aggregate only ever holds the contiguous acked
/// prefix.
#[test]
fn replayed_and_out_of_order_seqs_never_double_ingest() {
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[5, 3, 4], 1.5)
        .unwrap();
    let server = WireServer::bind(
        "127.0.0.1:0",
        solution.clone(),
        ServerConfig::default().shards(2),
    )
    .unwrap();
    let fingerprint = solution_fingerprint(&solution);
    let mut rng = StdRng::seed_from_u64(0xD0D0);
    let batch_of = |rng: &mut StdRng, base: u64| {
        let mut batch = CompactBatch::new();
        for uid in base..base + 10 {
            batch.push(uid, &solution.report(&[0, 1, 2], rng));
        }
        batch
    };

    // Session one: 1, 1 (replay), 2, 2 (replay), 3 → exactly 30 reports.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_frame(
        &mut writer,
        &Frame::Hello {
            fingerprint,
            auth: 0,
        },
    )
    .unwrap();
    writer.flush().unwrap();
    assert!(matches!(
        read_frame(&mut reader).unwrap(),
        Frame::HelloAck { .. }
    ));
    let (b1, b2, b3) = (
        batch_of(&mut rng, 0),
        batch_of(&mut rng, 10),
        batch_of(&mut rng, 20),
    );
    for (seq, batch) in [(1, b1.clone()), (1, b1), (2, b2.clone()), (2, b2), (3, b3)] {
        write_frame(&mut writer, &Frame::BatchSeq { seq, batch }).unwrap();
    }
    write_frame(&mut writer, &Frame::Drain).unwrap();
    writer.flush().unwrap();
    loop {
        match read_frame(&mut reader).unwrap() {
            Frame::BatchAck { .. } => continue,
            Frame::DrainAck { n } => {
                assert_eq!(n, 30, "replays must be deduplicated");
                break;
            }
            other => panic!("expected DRAIN_ACK, got {other:?}"),
        }
    }

    // Session two: a gap (first frame seq 5) is a protocol violation — the
    // connection ABORTs and nothing lands.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_frame(
        &mut writer,
        &Frame::Hello {
            fingerprint,
            auth: 0,
        },
    )
    .unwrap();
    writer.flush().unwrap();
    assert!(matches!(
        read_frame(&mut reader).unwrap(),
        Frame::HelloAck { .. }
    ));
    write_frame(
        &mut writer,
        &Frame::BatchSeq {
            seq: 5,
            batch: batch_of(&mut rng, 0),
        },
    )
    .unwrap();
    writer.flush().unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::Abort { code, .. } => assert_eq!(code, ldp_server::ABORT_PROTOCOL),
        other => panic!("expected ABORT on gapped seq, got {other:?}"),
    }

    server.wait_for_producers(1);
    assert_eq!(server.finish().n, 30, "the gapped session must not land");
}

/// A representative fault-tolerant session byte stream (HELLO, RESUME,
/// sequenced batches, acks) to mutate — the resume-grammar twin of
/// [`session_bytes`].
fn resume_session_bytes(seed: u64, reports: u64) -> Vec<u8> {
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[5, 3, 4], 1.5)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = CompactBatch::new();
    for uid in 0..reports {
        batch.push(uid, &solution.report(&[1, 2, 3], &mut rng));
    }
    let frames = [
        Frame::Hello {
            fingerprint: solution_fingerprint(&solution),
            auth: seed ^ 0xA11,
        },
        Frame::HelloAck {
            fingerprint: solution_fingerprint(&solution),
            shards: 2,
            session: seed.wrapping_mul(0x9E37_79B9) | 1,
            ack_every: 32,
        },
        Frame::Resume {
            session: seed | 1,
            last_acked: reports,
        },
        Frame::ResumeAck { acked_seq: reports },
        Frame::BatchSeq {
            seq: reports + 1,
            batch,
        },
        Frame::BatchAck {
            seq: reports + 1,
            n: reports,
        },
        Frame::Drain,
    ];
    let mut stream = Vec::new();
    let mut buf = Vec::new();
    for frame in &frames {
        encode_frame(frame, &mut buf);
        stream.extend_from_slice(&buf);
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Mutated fault-tolerance frames (RESUME / RESUME_ACK / BATCH_SEQ /
    /// BATCH_ACK) decode to typed errors or valid frames — never a panic.
    #[test]
    fn mutated_resume_streams_never_panic(
        seed in 0u64..50,
        reports in 0u64..60,
        flips in prop::collection::vec((0usize..4096, 1u8..255), 1..12),
    ) {
        let mut bytes = resume_session_bytes(seed, reports);
        for &(pos, xor) in &flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= xor;
        }
        drain_stream(&bytes);
    }

    /// Every truncation point of a resume-grammar stream fails typed: a
    /// clean Closed at a frame boundary or Truncated mid-frame.
    #[test]
    fn truncated_resume_streams_fail_typed(
        seed in 0u64..50,
        reports in 1u64..40,
        cut in 0usize..100_000,
    ) {
        let bytes = resume_session_bytes(seed, reports);
        let cut = cut % bytes.len();
        let (_, err) = drain_stream(&bytes[..cut]);
        match err {
            None | Some(WireError::Truncated) => {}
            Some(other) => panic!("cut at {cut}: unexpected {other:?}"),
        }
    }

    /// Arbitrary byte flips anywhere in a valid session stream decode to a
    /// typed error or to (possibly fewer) valid frames — never a panic.
    #[test]
    fn mutated_streams_never_panic(
        seed in 0u64..50,
        reports in 0u64..60,
        flips in prop::collection::vec((0usize..4096, 1u8..255), 1..12),
    ) {
        let mut bytes = session_bytes(seed, reports);
        for &(pos, xor) in &flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= xor;
        }
        drain_stream(&bytes);
    }

    /// Every truncation point yields Closed (at a frame boundary) or a
    /// typed mid-frame error on the last frame — all earlier frames decode.
    #[test]
    fn truncated_streams_fail_typed(
        seed in 0u64..50,
        reports in 1u64..40,
        cut in 0usize..100_000,
    ) {
        let bytes = session_bytes(seed, reports);
        let cut = cut % bytes.len();
        let (_, err) = drain_stream(&bytes[..cut]);
        // A strict prefix can never decode the full 5-frame session; it
        // must end in a clean Closed or a Truncated/Payload-class error.
        match err {
            None | Some(WireError::Truncated) => {}
            Some(other) => panic!("cut at {cut}: unexpected {other:?}"),
        }
    }

    /// Pure garbage (random bytes) is rejected without panicking.
    #[test]
    fn garbage_streams_fail_typed(
        bytes in prop::collection::vec(0u8..255, 0..512),
    ) {
        drain_stream(&bytes);
    }

    /// Mixed-solution sessions (numeric fixed-point entries on the wire) are
    /// as mutation-robust as categorical ones: flips decode to typed errors
    /// or valid frames, never a panic.
    #[test]
    fn mutated_mixed_streams_never_panic(
        seed in 0u64..50,
        reports in 0u64..60,
        flips in prop::collection::vec((0usize..4096, 1u8..255), 1..12),
    ) {
        let mut bytes = mixed_session_bytes(seed, reports);
        for &(pos, xor) in &flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= xor;
        }
        drain_stream(&bytes);
    }

    /// End-to-end: a live server fed a mutated session over a real socket
    /// never panics, never hangs, and never lets a corrupt frame's
    /// envelopes into the aggregate — the drained count stays at what valid
    /// prefix frames delivered, and a parallel clean producer is unharmed.
    #[test]
    fn live_server_survives_mutated_sessions(
        seed in 0u64..20,
        reports in 1u64..40,
        flips in prop::collection::vec((16usize..4096, 1u8..255), 1..4),
    ) {
        let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
            .build(&[5, 3, 4], 1.5)
            .unwrap();
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(2),
        )
        .unwrap();

        // Mutate past the HELLO frame (16-byte header + 16-byte payload) so
        // the session opens, then corrupt the rest.
        let mut bytes = session_bytes(seed, reports);
        for &(pos, xor) in &flips {
            let pos = 32 + pos % (bytes.len() - 32);
            bytes[pos] ^= xor;
        }
        let mut mutated = TcpStream::connect(server.local_addr()).unwrap();
        mutated.write_all(&bytes).unwrap();
        // Either the server aborts us mid-write (fine) or reads to the end.
        let _ = mutated.shutdown(std::net::Shutdown::Write);

        // A clean producer alongside must be able to drain exactly.
        let clean = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(clean.try_clone().unwrap());
        let mut writer = clean;
        write_frame(&mut writer, &Frame::Hello {
            fingerprint: solution_fingerprint(&solution),
            auth: 0,
        })
        .unwrap();
        writer.flush().unwrap();
        prop_assert!(matches!(read_frame(&mut reader).unwrap(), Frame::HelloAck { .. }));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1EA);
        let mut batch = CompactBatch::new();
        for uid in 0..25u64 {
            batch.push(uid, &solution.report(&[0, 1, 2], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        write_frame(&mut writer, &Frame::Drain).unwrap();
        writer.flush().unwrap();
        prop_assert!(matches!(read_frame(&mut reader).unwrap(), Frame::DrainAck { n: 25 }));

        drop(mutated);
        server.wait_for_producers(1);
        let snapshot = server.finish();
        // The clean producer's 25 reports always land; the mutated session
        // contributes its valid prefix frames only (0 or `reports`).
        prop_assert!(
            snapshot.n == 25 || snapshot.n == 25 + reports,
            "drained n = {} with reports = {}", snapshot.n, reports
        );
    }
}
