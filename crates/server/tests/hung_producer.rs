//! Regression test for the idle-connection bugfix: a producer that
//! completes the handshake and then goes silent (hung process, half-open
//! TCP connection) must be ABORTed by the configured read timeout instead
//! of pinning its handler thread forever — and a healthy producer sharing
//! the server must drain bit-identically to a batch aggregation, proving
//! the stall never reaches the shared aggregate or the drain barrier.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ldp_core::solutions::{CompactBatch, RsFdProtocol, SolutionKind, SolutionReport};
use ldp_server::wire::{read_frame, solution_fingerprint, write_frame, Frame};
use ldp_server::{ServerConfig, WireServer, ABORT_TIMEOUT};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn handshake(addr: std::net::SocketAddr, fingerprint: u64) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_frame(
        &mut writer,
        &Frame::Hello {
            fingerprint,
            auth: 0,
        },
    )
    .unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::HelloAck { .. } => {}
        other => panic!("expected HELLO-ACK, got {other:?}"),
    }
    (reader, writer)
}

#[test]
fn idle_connection_is_aborted_while_a_live_producer_drains_bit_identically() {
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[5, 3, 4], 1.5)
        .unwrap();
    let server = WireServer::bind(
        "127.0.0.1:0",
        solution.clone(),
        ServerConfig::default().shards(2).read_timeout_ms(150),
    )
    .unwrap();
    let addr = server.local_addr();
    let fingerprint = solution_fingerprint(&solution);

    // The hung producer: handshake, then silence. Its reader blocks until
    // the server gives up on the connection.
    let (mut hung_reader, _hung_writer) = handshake(addr, fingerprint);

    // The healthy producer streams 40 reports and drains while the hung
    // one sits idle on the same server.
    let reports: Vec<SolutionReport> = {
        let mut rng = StdRng::seed_from_u64(7);
        (0..40)
            .map(|_| solution.report(&[1, 2, 3], &mut rng))
            .collect()
    };
    let (mut reader, mut writer) = handshake(addr, fingerprint);
    let mut batch = CompactBatch::new();
    for (uid, report) in reports.iter().enumerate() {
        batch.push(uid as u64, report);
    }
    write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
    write_frame(&mut writer, &Frame::Drain).unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::DrainAck { n } => assert_eq!(n, 40),
        other => panic!("expected DRAIN-ACK, got {other:?}"),
    }

    // The idle connection is ABORTed with the timeout code, promptly: well
    // under the seconds a wedged drain barrier would cost, far above the
    // 150 ms the server is configured to wait.
    let waited = Instant::now();
    match read_frame(&mut hung_reader).unwrap() {
        Frame::Abort { code, message } => {
            assert_eq!(code, ABORT_TIMEOUT, "unexpected abort: {message}");
        }
        other => panic!("expected ABORT for the idle connection, got {other:?}"),
    }
    assert!(
        waited.elapsed() < Duration::from_secs(5),
        "timeout abort took {:?}",
        waited.elapsed()
    );

    // One producer drained; the hung one contributed nothing.
    server.wait_for_producers(1);
    assert_eq!(server.drained_producers(), 1);
    let snapshot = server.finish();
    assert_eq!(snapshot.n, 40);

    // Bit-identity with a batch aggregation of the same sanitized reports:
    // the aborted connection must not have perturbed the aggregate.
    let mut batch_agg = solution.aggregator();
    for report in &reports {
        batch_agg.absorb(report);
    }
    assert_eq!(snapshot.aggregator.counts(), batch_agg.counts());
}

#[test]
fn an_active_producer_is_never_timed_out_between_batches() {
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[4, 4], 2.0)
        .unwrap();
    let server = WireServer::bind(
        "127.0.0.1:0",
        solution.clone(),
        ServerConfig::default().shards(2).read_timeout_ms(200),
    )
    .unwrap();
    let (mut reader, mut writer) = handshake(server.local_addr(), solution_fingerprint(&solution));
    let mut rng = StdRng::seed_from_u64(11);
    // Three batches spaced just under the timeout: each write resets the
    // idle clock, so a slow-but-alive producer survives.
    for round in 0..3u64 {
        let mut batch = CompactBatch::new();
        for uid in 0..5u64 {
            batch.push(round * 5 + uid, &solution.report(&[0, 3], &mut rng));
        }
        write_frame(&mut writer, &Frame::Batch(batch)).unwrap();
        std::thread::sleep(Duration::from_millis(120));
    }
    write_frame(&mut writer, &Frame::Drain).unwrap();
    match read_frame(&mut reader).unwrap() {
        Frame::DrainAck { n } => assert_eq!(n, 15),
        other => panic!("expected DRAIN-ACK, got {other:?}"),
    }
    server.wait_for_producers(1);
    assert_eq!(server.finish().n, 15);
}
