//! Deterministic fault injection for the networked producer path.
//!
//! A [`FaultPlan`] is a seeded schedule of transport faults — dropped
//! writes, connection resets, mid-frame truncations, duplicated frames,
//! short delays — that [`crate::NetClient`] consults once per batch send.
//! The schedule is a pure function of the plan (SplitMix64 over the seed),
//! so a faulted run is exactly reproducible: the same plan against the same
//! producer yields the same faults at the same batch indices, which is what
//! lets `tests/reconnect_equivalence.rs` demand *bit-identical* estimates
//! from a faulted fleet and a clean one.
//!
//! Faults fire only on a frame's **first** transmission — replays after a
//! reconnect are fault-free — so every plan terminates: a producer with a
//! bounded retry budget either lands all its batches or exceeds the budget
//! and degrades the fleet, never livelocks.

use std::fmt;
use std::str::FromStr;

/// One class of injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame is discarded before any byte reaches the wire, then the
    /// connection is shut down — the server sees a clean close and the
    /// client must replay the frame after reconnecting.
    Drop,
    /// The frame is written after a short deterministic delay — exercises
    /// timeout margins without failing anything.
    Delay,
    /// The frame is written **completely**, then the connection is shut
    /// down — the server ingested it, so the client's replay must be
    /// deduplicated (the exactly-once path).
    Reset,
    /// Half the frame is written, then the connection is shut down — the
    /// server sees a mid-frame truncation and ABORTs the connection.
    Truncate,
    /// The frame is written twice back to back — the server must discard
    /// the second copy by its sequence number.
    Duplicate,
}

impl FaultKind {
    /// Every fault class, in documentation order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Reset,
        FaultKind::Truncate,
        FaultKind::Duplicate,
    ];

    /// Stable identifier used by `--fault-plan` and [`FaultPlan::parse`].
    pub fn id(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Reset => "reset",
            FaultKind::Truncate => "truncate",
            FaultKind::Duplicate => "duplicate",
        }
    }

    /// Looks a fault class up by its identifier.
    pub fn from_id(id: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.id() == id)
    }
}

/// A deterministic, seeded schedule of transport faults.
///
/// The textual form (CLI `--fault-plan`, [`FaultPlan::parse`]) is
/// `seed=7,every=4,max=10,kinds=drop+reset+truncate` — `kinds` defaults to
/// every class, `max` to unbounded. Every `every`-th batch send draws one
/// of `kinds` from the seeded stream, up to `max` faults total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the fault schedule's SplitMix64 stream.
    pub seed: u64,
    /// Fire on every `every`-th batch send (≥ 1).
    pub every: u64,
    /// Total faults to inject before the plan goes quiet (`u64::MAX` for
    /// unbounded).
    pub max: u64,
    /// The classes the schedule draws from, in [`FaultKind::ALL`] order.
    pub kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan injecting every class, every `every`-th send, unbounded.
    pub fn new(seed: u64, every: u64) -> FaultPlan {
        FaultPlan {
            seed,
            every: every.max(1),
            max: u64::MAX,
            kinds: FaultKind::ALL.to_vec(),
        }
    }

    /// Caps the total number of injected faults.
    pub fn max_faults(mut self, max: u64) -> FaultPlan {
        self.max = max;
        self
    }

    /// Restricts the schedule to the given classes (empty is rejected by
    /// [`FaultPlan::parse`]; programmatic callers keep what they pass).
    pub fn kinds(mut self, kinds: &[FaultKind]) -> FaultPlan {
        self.kinds = kinds.to_vec();
        self
    }

    /// Parses the `seed=..,every=..[,max=..][,kinds=a+b+c]` textual form.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = None;
        let mut every = None;
        let mut max = u64::MAX;
        let mut kinds = FaultKind::ALL.to_vec();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry '{part}' is not key=value"))?;
            match key {
                "seed" => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("fault-plan seed '{value}' is not a u64"))?,
                    );
                }
                "every" => {
                    let v = value
                        .parse::<u64>()
                        .map_err(|_| format!("fault-plan every '{value}' is not a u64"))?;
                    if v == 0 {
                        return Err("fault-plan every must be ≥ 1".into());
                    }
                    every = Some(v);
                }
                "max" => {
                    max = value
                        .parse::<u64>()
                        .map_err(|_| format!("fault-plan max '{value}' is not a u64"))?;
                }
                "kinds" => {
                    kinds = value
                        .split('+')
                        .map(|id| {
                            FaultKind::from_id(id)
                                .ok_or_else(|| format!("unknown fault kind '{id}'"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if kinds.is_empty() {
                        return Err("fault-plan kinds must name at least one class".into());
                    }
                }
                other => return Err(format!("unknown fault-plan key '{other}'")),
            }
        }
        Ok(FaultPlan {
            seed: seed.ok_or("fault-plan requires seed=<u64>")?,
            every: every.ok_or("fault-plan requires every=<n>")?,
            max,
            kinds,
        })
    }

    /// Starts the plan's deterministic schedule.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            state: self.seed ^ 0x6A09_E667_F3BC_C908,
            ops: 0,
            fired: 0,
        }
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        FaultPlan::parse(s)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={},every={}", self.seed, self.every)?;
        if self.max != u64::MAX {
            write!(f, ",max={}", self.max)?;
        }
        if self.kinds != FaultKind::ALL {
            let ids: Vec<&str> = self.kinds.iter().map(|k| k.id()).collect();
            write!(f, ",kinds={}", ids.join("+"))?;
        }
        Ok(())
    }
}

/// The running state of a [`FaultPlan`]: consulted once per batch send,
/// answers "inject which fault, if any, on this op".
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    ops: u64,
    fired: u64,
}

impl FaultInjector {
    /// Advances the schedule by one batch send and returns the fault to
    /// inject on it, if any.
    pub fn next_fault(&mut self) -> Option<FaultKind> {
        self.ops += 1;
        if self.fired >= self.plan.max || !self.ops.is_multiple_of(self.plan.every) {
            return None;
        }
        self.fired += 1;
        let draw = splitmix64(&mut self.state);
        Some(self.plan.kinds[(draw % self.plan.kinds.len() as u64) as usize])
    }

    /// Faults injected so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

/// SplitMix64 (Steele et al.) — the workspace's vendored `rand` would do,
/// but three lines of arithmetic keep the fault stream's definition
/// self-contained and trivially portable to a test harness in any language.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    *state ^= z >> 31; // fold the output back so kinds draws decorrelate
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        for spec in [
            "seed=7,every=4",
            "seed=7,every=4,max=10",
            "seed=0,every=1,max=3,kinds=drop+reset",
            "seed=12345,every=100,kinds=truncate",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for spec in [
            "",
            "every=4",
            "seed=7",
            "seed=7,every=0",
            "seed=7,every=4,kinds=",
            "seed=7,every=4,kinds=explode",
            "seed=x,every=4",
            "seed=7,every=4,bogus=1",
            "seed=7;every=4",
        ] {
            assert!(FaultPlan::parse(spec).is_err(), "accepted '{spec}'");
        }
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let plan = FaultPlan::parse("seed=9,every=3,max=4").unwrap();
        let run = |mut inj: FaultInjector| -> Vec<Option<FaultKind>> {
            (0..20).map(|_| inj.next_fault()).collect()
        };
        let a = run(plan.injector());
        let b = run(plan.injector());
        assert_eq!(a, b, "same plan, same schedule");
        let fired = a.iter().flatten().count();
        assert_eq!(fired, 4, "max caps the schedule");
        for (i, fault) in a.iter().enumerate() {
            if fault.is_some() {
                assert_eq!((i + 1) % 3, 0, "faults only on every-th op");
            }
        }
    }

    #[test]
    fn restricted_kinds_are_honored() {
        let plan = FaultPlan::parse("seed=4,every=1,kinds=reset").unwrap();
        let mut inj = plan.injector();
        for _ in 0..50 {
            assert_eq!(inj.next_fault(), Some(FaultKind::Reset));
        }
        assert_eq!(inj.fired(), 50);
    }
}
