//! The seeded, sharded attack pipeline: dataset → [`CollectionPipeline`]
//! run → adversary fit (profiles / classifier / index) → **per-target-seeded
//! ASR evaluation**, thread-count-independent end to end.
//!
//! The adversary mirror of [`CollectionPipeline`]: where the collection side
//! streams reports into per-thread aggregator shards, the attack side shards
//! *evaluation targets* across threads via [`par::par_users_with`], each
//! target drawing its randomness from its own
//! [`target_rng`](ldp_core::attacks::target_rng) stream derived from the
//! pipeline seed — replacing the single serial rng the old
//! `ReidentAttack::rid_acc` threaded through all users. One
//! [`MatchScratch`] is reused per shard, so evaluation is allocation-flat.
//! Results are **bit-identical** to the serial
//! [`evaluate_serial`](ldp_core::attacks::evaluate_serial) reference for
//! every thread count.
//!
//! ```
//! use ldp_core::attacks::{AttackKind, ReidentConfig};
//! use ldp_core::solutions::SolutionKind;
//! use ldp_datasets::corpora::adult_like;
//! use ldp_protocols::ProtocolKind;
//! use ldp_sim::{AttackPipeline, CollectionPipeline};
//!
//! let dataset = adult_like(2_000, 7);
//! let collection = CollectionPipeline::from_kind(
//!     SolutionKind::Smp(ProtocolKind::Grr),
//!     &dataset.schema().cardinalities(),
//!     4.0,
//! )
//! .unwrap()
//! .seed(42)
//! .threads(4);
//! let run = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig::default()))
//!     .unwrap()
//!     .seed(42)
//!     .threads(4)
//!     .run(&collection, &dataset);
//! let outcome = run.outcome.reident().unwrap();
//! assert_eq!(outcome.n_targets, 2_000);
//! ```

use ldp_core::attacks::{
    self, AdversaryView, Attack, AttackKind, AttackOutcome, DynAttack, FittedAttack, ReidentEval,
};
use ldp_core::profiling::Profile;
use ldp_core::reident::{MatchScratch, ReidentAttack};
use ldp_datasets::{Dataset, MixedDataset};
use ldp_protocols::ProtocolError;

use crate::par;
use crate::pipeline::{CollectionPipeline, CollectionRun};

/// Configurable sharded attack run. Build with [`AttackPipeline::new`] /
/// [`AttackPipeline::from_kind`], chain the builder setters, then either
/// [`AttackPipeline::run`] end-to-end over a collection, or
/// [`AttackPipeline::evaluate`] / [`AttackPipeline::rid_acc`] over
/// already-fitted adversary state.
#[derive(Debug, Clone)]
pub struct AttackPipeline {
    attack: DynAttack,
    seed: u64,
    threads: usize,
}

/// The outcome of one end-to-end attack pass.
pub struct AttackRun {
    /// The attack's result (RID-ACC / AIF accuracy / PIE audit).
    pub outcome: AttackOutcome,
    /// The server-side collection pass the adversary observed (estimates and
    /// merged aggregator included — collection and observation share one
    /// sanitization pass, so the attack does not re-sanitize the
    /// population).
    pub collection: CollectionRun,
    /// The fitted adversary, reusable for further [`AttackPipeline::evaluate`]
    /// calls (e.g. at different evaluation seeds).
    pub fitted: Box<dyn FittedAttack>,
}

impl AttackPipeline {
    /// Wraps an already-built attack with default seed and thread count.
    pub fn new(attack: DynAttack) -> Self {
        AttackPipeline {
            attack,
            seed: 0,
            threads: par::default_threads(),
        }
    }

    /// Builds the attack from its kind — the one-stop constructor for sweeps
    /// (`AttackKind::build` under the hood).
    pub fn from_kind(kind: AttackKind) -> Result<Self, ProtocolError> {
        Ok(AttackPipeline::new(kind.build()?))
    }

    /// Sets the attack seed (fit-phase and per-target randomness derive from
    /// it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (`1` runs inline; results are identical
    /// for every value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured attack.
    pub fn attack(&self) -> &DynAttack {
        &self.attack
    }

    /// Runs the full pass: the collection pipeline streams the dataset into
    /// server estimates while the adversary observes the wire
    /// ([`CollectionPipeline::run_with_observation`] — each user is
    /// sanitized once), the attack fits its model, and every target is
    /// scored in parallel shards with per-target rng streams.
    ///
    /// # Panics
    /// Panics when the dataset does not match the collection solution, or
    /// when the configured attack cannot run against the solution family
    /// (e.g. sampled-attribute inference against SPL/SMP).
    pub fn run(&self, collection: &CollectionPipeline, dataset: &Dataset) -> AttackRun {
        // Analytic attacks never read the wire: keep those runs memory-flat.
        let (crun, observed) = if self.attack.needs_observation() {
            collection.run_with_observation(dataset)
        } else {
            (collection.run(dataset), Vec::new())
        };
        let view = AdversaryView {
            dataset,
            solution: collection.solution(),
            observed: &observed,
            numeric_truth: None,
        };
        let fitted = self.attack.fit(&view, &mut attacks::fit_rng(self.seed));
        let outcome = self.evaluate(fitted.as_ref());
        AttackRun {
            outcome,
            collection: crun,
            fitted,
        }
    }

    /// The longitudinal pass behind [`AttackKind::Averaging`]: the
    /// collection pipeline replays `rounds` rounds of the campaign under
    /// `policy` ([`CollectionPipeline::observe_rounds`] — a round-major
    /// `rounds·n` wire sanitized with the per-round solution, ε/R under
    /// ε-splitting), the attack fits over the pooled wire, and every target
    /// is scored in parallel shards. The returned
    /// [`AttackRun::collection`] aggregates the full multi-round wire.
    ///
    /// # Panics
    /// Panics when the dataset does not match the collection solution, or
    /// when the configured attack rejects the solution family or wire
    /// length.
    pub fn run_rounds(
        &self,
        collection: &CollectionPipeline,
        dataset: &Dataset,
        rounds: usize,
        policy: crate::pipeline::BudgetPolicy,
    ) -> Result<AttackRun, ProtocolError> {
        let (round_solution, observed) = collection.observe_rounds(dataset, rounds, policy)?;
        let view = AdversaryView {
            dataset,
            solution: &round_solution,
            observed: &observed,
            numeric_truth: None,
        };
        let fitted = self.attack.fit(&view, &mut attacks::fit_rng(self.seed));
        let outcome = self.evaluate(fitted.as_ref());
        let mut aggregator = round_solution.aggregator();
        for report in &observed {
            aggregator.absorb(report);
        }
        Ok(AttackRun {
            outcome,
            collection: CollectionRun::from_snapshot(ldp_server::ServerSnapshot::from_aggregator(
                aggregator, 1,
            )),
            fitted,
        })
    }

    /// [`AttackPipeline::run`] over a mixed categorical + continuous round:
    /// the collection pass sanitizes through
    /// [`CollectionPipeline::run_mixed`] and the adversary's view carries the
    /// continuous ground truth, so numeric attacks
    /// ([`AttackKind::NumericValueRange`]) can fit their priors.
    ///
    /// # Panics
    /// Panics when the mixed dataset does not match the collection solution,
    /// or when the configured attack cannot run against mixed rounds.
    pub fn run_mixed(&self, collection: &CollectionPipeline, mixed: &MixedDataset) -> AttackRun {
        let (crun, observed) = if self.attack.needs_observation() {
            collection.run_with_observation_mixed(mixed)
        } else {
            (collection.run_mixed(mixed), Vec::new())
        };
        let view = AdversaryView {
            dataset: mixed.cat(),
            solution: collection.solution(),
            observed: &observed,
            numeric_truth: Some(mixed),
        };
        let fitted = self.attack.fit(&view, &mut attacks::fit_rng(self.seed));
        let outcome = self.evaluate(fitted.as_ref());
        AttackRun {
            outcome,
            collection: crun,
            fitted,
        }
    }

    /// Sharded, per-target-seeded evaluation of a fitted attack —
    /// bit-identical to
    /// [`evaluate_serial`](ldp_core::attacks::evaluate_serial) at the same
    /// seed, for every thread count.
    pub fn evaluate(&self, fitted: &dyn FittedAttack) -> AttackOutcome {
        evaluate_sharded(fitted, self.seed, self.threads)
    }

    /// The configured [`Reident`](DynAttack::Reident) scenario, or a panic —
    /// shared guard of the profile-evaluation entry points below.
    fn reident_scenario(&self) -> &ldp_core::attacks::ReidentScenario {
        match &self.attack {
            DynAttack::Reident(s) => s,
            other => panic!(
                "this entry point needs a Reident attack, the pipeline is configured with {}",
                other.name()
            ),
        }
    }

    /// Builds the background-knowledge index the configured
    /// [`Reident`](DynAttack::Reident) scenario prescribes over `dataset`
    /// (FK-RI or the configured PK-RI subset).
    ///
    /// # Panics
    /// Panics when the configured attack is not `Reident`.
    pub fn reident_index(&self, dataset: &Dataset) -> ReidentAttack {
        self.reident_scenario().build_index(dataset)
    }

    /// Sharded RID-ACC (%) over externally built profiles (e.g. multi-survey
    /// campaign snapshots), where `profiles[i]` targets background record
    /// `i`. One entry per top-`k` of the configured
    /// [`Reident`](DynAttack::Reident) scenario.
    ///
    /// # Panics
    /// Panics when the configured attack is not `Reident`.
    pub fn rid_acc(&self, index: &ReidentAttack, profiles: &[Profile]) -> Vec<f64> {
        let top_ks = &self.reident_scenario().config().top_ks;
        rid_acc_sharded(index, profiles, top_ks, self.seed, self.threads)
    }
}

/// The shared sharded evaluator: targets fan out over
/// [`par::par_users_with`] (per-target rng streams salted with
/// [`attacks::TARGET_SALT`]), per-target hit bits come back packed in a
/// `u64` mask, and per-slot counts feed [`FittedAttack::outcome`].
pub(crate) fn evaluate_sharded(
    fitted: &dyn FittedAttack,
    seed: u64,
    threads: usize,
) -> AttackOutcome {
    let slots = fitted.n_slots();
    assert!(
        slots <= attacks::MAX_METRIC_SLOTS,
        "at most {} metric slots per attack (hits are packed into a u64 mask)",
        attacks::MAX_METRIC_SLOTS
    );
    let masks: Vec<u64> = par::par_users_with(
        fitted.n_targets(),
        threads,
        seed,
        attacks::TARGET_SALT,
        || (MatchScratch::default(), vec![false; slots]),
        |target, (scratch, hits), rng| {
            fitted.evaluate_target(target, scratch, hits, rng);
            hits.iter()
                .enumerate()
                .fold(0u64, |mask, (slot, &hit)| mask | (u64::from(hit) << slot))
        },
    );
    let mut counts = vec![0u64; slots];
    for mask in masks {
        for (slot, count) in counts.iter_mut().enumerate() {
            *count += (mask >> slot) & 1;
        }
    }
    fitted.outcome(&counts)
}

/// Sharded RID-ACC over borrowed profiles (the engine behind
/// [`AttackPipeline::rid_acc`] and the legacy `rid_acc_multi` helpers).
pub(crate) fn rid_acc_sharded(
    index: &ReidentAttack,
    profiles: &[Profile],
    top_ks: &[usize],
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    let eval = ReidentEval {
        index,
        profiles,
        top_ks,
    };
    match evaluate_sharded(&eval, seed, threads) {
        AttackOutcome::Reident(o) => o.rid_acc,
        _ => unreachable!("ReidentEval always yields a reident outcome"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::attacks::{evaluate_serial, InferenceConfig, ReidentConfig};
    use ldp_core::inference::{AttackClassifier, AttackModel};
    use ldp_core::solutions::{RsFdProtocol, SolutionKind};
    use ldp_datasets::corpora::adult_like;
    use ldp_gbdt::LogisticParams;
    use ldp_protocols::ProtocolKind;

    fn logistic() -> AttackClassifier {
        AttackClassifier::Logistic(LogisticParams::default())
    }

    #[test]
    fn sharded_reident_is_bit_identical_to_serial() {
        let ds = adult_like(400, 5);
        let ks = ds.schema().cardinalities();
        let collection =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, 4.0)
                .unwrap()
                .seed(11)
                .threads(3);
        let pipeline = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig::default()))
            .unwrap()
            .seed(11);
        let run = pipeline.clone().threads(1).run(&collection, &ds);
        let serial = evaluate_serial(run.fitted.as_ref(), 11);
        for threads in [2usize, 8] {
            let sharded = pipeline
                .clone()
                .threads(threads)
                .evaluate(run.fitted.as_ref());
            let (a, b) = (serial.reident().unwrap(), sharded.reident().unwrap());
            assert_eq!(a.n_targets, b.n_targets);
            for (x, y) in a.rid_acc.iter().zip(&b.rid_acc) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn end_to_end_inference_attack_runs_sharded() {
        let ds = adult_like(600, 6);
        let ks = ds.schema().cardinalities();
        let collection =
            CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 6.0)
                .unwrap()
                .seed(3)
                .threads(2);
        let pipeline = AttackPipeline::from_kind(AttackKind::SampledAttribute(InferenceConfig {
            model: AttackModel::NoKnowledge { synth_factor: 1.0 },
            classifier: logistic(),
        }))
        .unwrap()
        .seed(3);
        let run_a = pipeline.clone().threads(1).run(&collection, &ds);
        let run_b = pipeline.clone().threads(4).run(&collection, &ds);
        let (a, b) = (
            run_a.outcome.inference().unwrap(),
            run_b.outcome.inference().unwrap(),
        );
        assert_eq!(a.aif_acc.to_bits(), b.aif_acc.to_bits());
        assert_eq!(a.n_test, 600);
        assert_eq!(run_a.collection.n, 600);
    }

    #[test]
    fn rid_acc_helper_matches_evaluate_on_reident_eval() {
        let ds = adult_like(200, 9);
        let all: Vec<usize> = (0..ds.d()).collect();
        let index = ReidentAttack::build(&ds, &all);
        let profiles: Vec<Profile> = (0..ds.n())
            .map(|i| {
                let mut p = Profile::new();
                for j in 0..3 {
                    p.observe(j, ds.value(i, j));
                }
                p
            })
            .collect();
        let pipeline = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig::default()))
            .unwrap()
            .seed(5)
            .threads(4);
        let accs = pipeline.rid_acc(&index, &profiles);
        let via_eval = pipeline.evaluate(&ReidentEval {
            index: &index,
            profiles: &profiles,
            top_ks: &[1, 10],
        });
        assert_eq!(accs, via_eval.reident().unwrap().rid_acc);
    }

    #[test]
    fn empty_profile_set_yields_zero_not_nan() {
        let ds = adult_like(50, 2);
        let all: Vec<usize> = (0..ds.d()).collect();
        let index = ReidentAttack::build(&ds, &all);
        let pipeline =
            AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig::default())).unwrap();
        let accs = pipeline.rid_acc(&index, &[]);
        assert_eq!(accs, vec![0.0, 0.0]);
    }

    #[test]
    fn sharded_numeric_attack_is_bit_identical_to_serial() {
        use ldp_core::attacks::NumericConfig;
        use ldp_core::solutions::MixedKind;
        use ldp_core::NumericKind;
        let mixed = ldp_datasets::mixed::mixed_survey_like(800, 13);
        let collection = CollectionPipeline::from_kind(
            SolutionKind::Mixed(MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: NumericKind::Piecewise,
                sample_k: 2,
            }),
            &mixed.ks(),
            4.0,
        )
        .unwrap()
        .seed(7)
        .threads(3);
        let pipeline = AttackPipeline::from_kind(AttackKind::NumericValueRange(NumericConfig {
            dim: 4,
            buckets: 4,
        }))
        .unwrap()
        .seed(7);
        let run = pipeline.clone().threads(1).run_mixed(&collection, &mixed);
        let serial = evaluate_serial(run.fitted.as_ref(), 7);
        assert_eq!(run.collection.n, 800);
        for threads in [2usize, 8] {
            let sharded = pipeline
                .clone()
                .threads(threads)
                .evaluate(run.fitted.as_ref());
            let (a, b) = (serial.numeric().unwrap(), sharded.numeric().unwrap());
            assert_eq!(a.n_targets, b.n_targets);
            assert_eq!(a.acc.to_bits(), b.acc.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn longitudinal_averaging_runs_and_memoize_stays_exactly_flat() {
        use crate::pipeline::BudgetPolicy;
        use ldp_core::attacks::AveragingConfig;
        let ds = adult_like(400, 5);
        let ks = ds.schema().cardinalities();
        let collection =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, 8.0)
                .unwrap()
                .seed(17)
                .threads(3);
        let attack_at = |rounds: usize| {
            AttackPipeline::from_kind(AttackKind::Averaging(AveragingConfig {
                rounds,
                reident: ReidentConfig::default(),
            }))
            .unwrap()
            .seed(17)
            .threads(3)
        };
        let one = attack_at(1)
            .run_rounds(&collection, &ds, 1, BudgetPolicy::Memoize)
            .unwrap();
        let four = attack_at(4)
            .run_rounds(&collection, &ds, 4, BudgetPolicy::Memoize)
            .unwrap();
        let (a, b) = (
            one.outcome.reident().unwrap(),
            four.outcome.reident().unwrap(),
        );
        assert_eq!(a.n_targets, 400);
        assert_eq!(
            a.rid_acc, b.rid_acc,
            "memoized rounds replay round 0: pooling must change nothing"
        );
        assert_eq!(four.collection.n, 4 * 400);
    }

    #[test]
    fn pie_audit_runs_through_the_pipeline() {
        let ds = adult_like(2_000, 4);
        let ks = ds.schema().cardinalities();
        let collection =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, 1.0)
                .unwrap()
                .seed(1);
        let run = AttackPipeline::from_kind(AttackKind::PieAudit { beta: 0.5 })
            .unwrap()
            .seed(1)
            .run(&collection, &ds);
        let audit = run.outcome.pie().unwrap();
        assert_eq!(audit.decisions.len(), ds.d());
        assert!(audit.alpha > 0.0);
    }
}
