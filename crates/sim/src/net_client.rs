//! The producer side of the ingestion wire: a blocking TCP client that
//! batches sanitized reports into sequence-numbered [`CompactBatch`] frames
//! for a [`WireServer`](ldp_server::WireServer), and survives the wire
//! failing underneath it.
//!
//! One [`NetClient`] is one producer session: connect (HELLO/HELLO_ACK
//! fingerprint + auth handshake), [`NetClient::push`] reports — buffered
//! locally and flushed as BATCH_SEQ frames at the configured batch size —
//! interleave [`NetClient::snapshot`] round trips for incremental progress,
//! and [`NetClient::finish`] with a DRAIN/DRAIN_ACK handshake. The batch
//! buffer and the frame scratch buffer are reused across flushes, so a
//! steady-state producer allocates nothing per report beyond its bounded
//! replay ring.
//!
//! ## Fault tolerance
//!
//! Every sent frame sits in an unacked **replay ring** until the server's
//! cumulative `BATCH_ACK` covers its sequence number; the ring is bounded
//! ([`ClientConfig::ack_window`]), which bounds producer in-flight bytes
//! explicitly. On a transport fault the client redials with seeded, bounded
//! exponential backoff + jitter ([`ClientConfig::retries`]), re-handshakes,
//! sends `RESUME { session, last_acked }`, prunes the ring by the server's
//! authoritative `RESUME_ACK`, and replays only the frames the server never
//! ingested — the server dedups any overlap by sequence number, so ingest
//! is exactly-once however the connection dies. Configurable read deadlines
//! ([`ClientConfig::read_timeout_ms`]) turn a hung server into a typed
//! [`WireError::Timeout`] instead of a forever-blocked producer.
//!
//! A deterministic [`FaultPlan`] can be attached to inject transport faults
//! on the client's own first-transmission sends (replays are fault-free),
//! which is how the reconnect path is exercised reproducibly in tests and
//! via `risks produce --fault-plan`.
//!
//! Backpressure needs no client-side code: when the server's shard queues
//! fill, its handler stops reading, the TCP window closes, and the
//! `write_all` inside [`NetClient::push`] simply blocks until the server
//! catches up.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ldp_core::solutions::{CompactBatch, DynSolution, SolutionReport};
use ldp_server::wire::{
    auth_fingerprint, encode_batch_seq_frame, read_frame, solution_fingerprint, write_frame, Frame,
    WireError, WireSnapshot,
};

use crate::fault::{splitmix64, FaultInjector, FaultKind, FaultPlan};

/// Default reports per BATCH frame — matches the server's default
/// channel-message batch (`ServerConfig::batch`).
const DEFAULT_BATCH: usize = 1024;

/// Client-side wire behavior: auth, deadlines, reconnect policy, replay
/// ring sizing and (for tests/chaos runs) fault injection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClientConfig {
    /// Shared-secret auth token presented in HELLO (`None` presents the
    /// zero digest, accepted only by servers with no token configured).
    pub auth: Option<String>,
    /// Socket read (and connect) deadline in milliseconds; `0` blocks
    /// forever, matching the historical client. An expired deadline is a
    /// typed [`WireError::Timeout`].
    pub read_timeout_ms: u64,
    /// Reconnect attempts per fault before the producer gives up. `0`
    /// disables reconnection entirely — the first transport fault is fatal,
    /// the pre-fault-tolerance semantics.
    pub retries: u32,
    /// First reconnect backoff in milliseconds (doubled per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_max_ms: u64,
    /// Seed of the backoff jitter stream — faulted runs stay reproducible.
    pub backoff_seed: u64,
    /// Max unacked frames in the replay ring before the producer blocks
    /// waiting for a `BATCH_ACK` (effective window is at least the
    /// server's announced ack interval, so an ack is always owed before
    /// the ring can fill).
    pub ack_window: usize,
    /// Deterministic transport-fault schedule for chaos tests; `None` for
    /// a clean producer.
    pub fault_plan: Option<FaultPlan>,
    /// Reports per BATCH_SEQ frame (`0` = the default 1024). Smaller
    /// batches mean more frames — chaos tests shrink this so a fault plan
    /// fires many times over a small corpus.
    pub batch: usize,
}

impl ClientConfig {
    /// A fault-tolerant default: 8 retries, 10ms–1s backoff, 64-frame ring.
    pub fn resilient() -> ClientConfig {
        ClientConfig {
            auth: None,
            read_timeout_ms: 0,
            retries: 8,
            backoff_base_ms: 10,
            backoff_max_ms: 1000,
            backoff_seed: 0,
            ack_window: 64,
            fault_plan: None,
            batch: 0,
        }
    }

    /// Sets the shared-secret auth token.
    pub fn auth(mut self, token: Option<String>) -> Self {
        self.auth = token;
        self
    }

    /// Sets the read/connect deadline in milliseconds (`0` = none).
    pub fn read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms;
        self
    }

    /// Sets the reconnect-attempt budget per fault (`0` = no reconnects).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the backoff jitter seed.
    pub fn backoff_seed(mut self, seed: u64) -> Self {
        self.backoff_seed = seed;
        self
    }

    /// Sets the replay-ring window in frames (clamped to ≥ 1).
    pub fn ack_window(mut self, frames: usize) -> Self {
        self.ack_window = frames.max(1);
        self
    }

    /// Attaches a deterministic fault-injection schedule.
    pub fn fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the reports-per-frame batch size (`0` = the default 1024).
    pub fn batch(mut self, reports: usize) -> Self {
        self.batch = reports;
        self
    }
}

/// A connected producer session speaking the `ldp_server::wire` protocol.
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
    addrs: Vec<SocketAddr>,
    cfg: ClientConfig,
    fingerprint: u64,
    auth: u64,
    batch: CompactBatch,
    batch_size: usize,
    frame_buf: Vec<u8>,
    server_shards: u32,
    /// Server-issued resume token (0: session table full, no resume).
    session: u64,
    /// The server's announced cumulative-ack interval.
    server_ack_every: u64,
    /// Sequence number the *next* flushed batch will carry.
    next_seq: u64,
    /// Highest sequence number the server has cumulatively acked.
    acked_seq: u64,
    /// Sealed, sent, unacked frames — replayed verbatim after a resume.
    ring: VecDeque<(u64, Vec<u8>)>,
    sent: u64,
    injector: Option<FaultInjector>,
    jitter: u64,
}

impl NetClient {
    /// Connects to a serving [`WireServer`](ldp_server::WireServer) and runs
    /// the HELLO handshake for `solution`, with the default (non-resilient,
    /// deadline-free) [`ClientConfig`]. Fails with a typed error when the
    /// server aggregates for a different solution configuration (the
    /// fingerprint covers family, domain sizes and ε).
    pub fn connect(addr: impl ToSocketAddrs, solution: &DynSolution) -> Result<Self, WireError> {
        NetClient::connect_with(addr, solution, ClientConfig::default())
    }

    /// [`NetClient::connect`] with explicit client-side wire behavior.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        solution: &DynSolution,
        cfg: ClientConfig,
    ) -> Result<Self, WireError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(WireError::Handshake(
                "address resolved to nothing".to_string(),
            ));
        }
        let fingerprint = solution_fingerprint(solution);
        let auth = cfg.auth.as_deref().map(auth_fingerprint).unwrap_or(0);
        let (stream, mut reader) = dial(&addrs, &cfg)?;
        let mut writer = stream.try_clone()?;
        let (server_shards, session, server_ack_every) =
            hello(&mut writer, &mut reader, fingerprint, auth)?;
        let injector = cfg.fault_plan.as_ref().map(|p| p.injector());
        let jitter = splitmix64(&mut (cfg.backoff_seed ^ 0x9E37_79B9));
        let batch_size = match cfg.batch {
            0 => DEFAULT_BATCH,
            b => b,
        };
        Ok(NetClient {
            reader,
            stream,
            addrs,
            fingerprint,
            auth,
            batch: CompactBatch::new(),
            batch_size,
            frame_buf: Vec::new(),
            server_shards,
            session,
            server_ack_every: u64::from(server_ack_every).max(1),
            next_seq: 1,
            acked_seq: 0,
            ring: VecDeque::new(),
            sent: 0,
            injector,
            jitter,
            cfg,
        })
    }

    /// Sets the reports-per-frame batch size (clamped to ≥ 1).
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// The server's shard count, as announced in HELLO_ACK.
    pub fn server_shards(&self) -> u32 {
        self.server_shards
    }

    /// The server-issued resume token (0 when the server's session table
    /// was full — this producer cannot survive a connection fault).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Reports pushed into this session so far (buffered or sent).
    pub fn pushed(&self) -> u64 {
        self.sent + self.batch.len() as u64
    }

    /// Buffers one sanitized report, sending a BATCH_SEQ frame whenever the
    /// buffer reaches the batch size. A blocked send *is* the backpressure
    /// path — see the [module docs](crate::net_client).
    pub fn push(&mut self, uid: u64, report: &SolutionReport) -> Result<(), WireError> {
        self.batch.push(uid, report);
        if self.batch.len() >= self.batch_size {
            self.flush_batch()?;
        }
        Ok(())
    }

    /// Sends any buffered reports and flushes the socket.
    pub fn flush(&mut self) -> Result<(), WireError> {
        if !self.batch.is_empty() {
            self.flush_batch()?;
        }
        if let Err(e) = self.stream.flush() {
            self.recover(WireError::from(e))?;
        }
        Ok(())
    }

    /// Requests the server's current merged estimates; with `quiesce`, the
    /// server barriers first so the snapshot covers at least everything
    /// this producer pushed before the call (buffered reports are flushed
    /// first). This is the incremental estimate-while-ingesting stream.
    pub fn snapshot(&mut self, quiesce: bool) -> Result<WireSnapshot, WireError> {
        self.flush()?;
        let mut attempts = 0u32;
        loop {
            match self.snapshot_once(quiesce) {
                Ok(snapshot) => return Ok(snapshot),
                Err(e) => {
                    attempts += 1;
                    if attempts > self.cfg.retries {
                        return Err(e);
                    }
                    self.recover(e)?;
                }
            }
        }
    }

    fn snapshot_once(&mut self, quiesce: bool) -> Result<WireSnapshot, WireError> {
        write_frame(&mut self.stream, &Frame::SnapshotRequest { quiesce })?;
        self.stream.flush()?;
        match self.read_response()? {
            Frame::Snapshot(snapshot) => Ok(snapshot),
            Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
            other => Err(WireError::Payload(format!(
                "expected SNAPSHOT, got {other:?}"
            ))),
        }
    }

    /// Ends the current collection round: flushes every buffered report,
    /// sends `EPOCH{round}` and blocks until the server's fleet barrier
    /// releases with the `EPOCH{round + 1}` ack (every producer of the
    /// declared fleet must send its own EPOCH frame before anyone is
    /// released — see `ldp_server::wire`). Returns the next round index.
    /// Safe across faults: barrier arrival is keyed by session token and
    /// idempotent, so a re-announce after a resume never double-counts.
    pub fn advance_epoch(&mut self, round: u64) -> Result<u64, WireError> {
        self.flush()?;
        let mut attempts = 0u32;
        loop {
            match self.advance_epoch_once(round) {
                Ok(next) => return Ok(next),
                Err(e) => {
                    attempts += 1;
                    if attempts > self.cfg.retries {
                        return Err(e);
                    }
                    self.recover(e)?;
                }
            }
        }
    }

    fn advance_epoch_once(&mut self, round: u64) -> Result<u64, WireError> {
        write_frame(&mut self.stream, &Frame::Epoch { round })?;
        self.stream.flush()?;
        match self.read_response()? {
            Frame::Epoch { round: next } if next == round + 1 => Ok(next),
            Frame::Epoch { round: next } => Err(WireError::Payload(format!(
                "epoch ack skewed: sent round {round}, server acked {next}"
            ))),
            Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
            other => Err(WireError::Payload(format!("expected EPOCH, got {other:?}"))),
        }
    }

    /// Ends the session: flushes every buffered report, sends DRAIN and
    /// waits for the server's DRAIN_ACK. Returns the number of reports the
    /// server ingested for this session (always equal to
    /// [`NetClient::pushed`] on a healthy or recovered wire — the frames
    /// are checksummed, sequenced and deduplicated, and the ack counts
    /// post-validation envelopes across every connection of the session).
    pub fn finish(mut self) -> Result<u64, WireError> {
        self.flush()?;
        let mut attempts = 0u32;
        loop {
            match self.finish_once() {
                Ok(n) => return Ok(n),
                Err(e) => {
                    attempts += 1;
                    if attempts > self.cfg.retries {
                        return Err(e);
                    }
                    self.recover(e)?;
                }
            }
        }
    }

    fn finish_once(&mut self) -> Result<u64, WireError> {
        write_frame(&mut self.stream, &Frame::Drain)?;
        self.stream.flush()?;
        match self.read_response()? {
            Frame::DrainAck { n } => {
                // Everything sent is ingested — the ring is history.
                self.ring.clear();
                Ok(n)
            }
            Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
            other => Err(WireError::Payload(format!(
                "expected DRAIN_ACK, got {other:?}"
            ))),
        }
    }

    /// Serializes the buffered batch into a sequenced frame, rings it,
    /// sends it (through the fault injector on first transmission), and
    /// blocks for acks while the ring is at capacity — the explicit bound
    /// on producer in-flight bytes.
    fn flush_batch(&mut self) -> Result<(), WireError> {
        let seq = self.next_seq;
        encode_batch_seq_frame(seq, &self.batch, &mut self.frame_buf);
        // Ring *before* send: a fault mid-write must leave the frame
        // replayable.
        self.ring.push_back((seq, self.frame_buf.clone()));
        self.next_seq += 1;
        self.sent += self.batch.len() as u64;
        self.batch.clear();
        if let Err(e) = self.send_new_frame() {
            self.recover(e)?;
        }
        let window = self
            .cfg
            .ack_window
            .max(1)
            .max(self.server_ack_every as usize);
        while self.ring.len() >= window {
            if let Err(e) = self.read_one_ack() {
                self.recover(e)?;
            }
        }
        Ok(())
    }

    /// First transmission of the newest ring entry, with fault injection.
    /// Replays (in [`NetClient::try_reconnect`]) bypass this — injected
    /// faults fire at most once per logical batch, so every plan
    /// terminates.
    fn send_new_frame(&mut self) -> Result<(), WireError> {
        let bytes = &self.ring.back().expect("frame was just ringed").1;
        let fault = self.injector.as_mut().and_then(|i| i.next_fault());
        match fault {
            None => {
                self.stream.write_all(bytes)?;
                Ok(())
            }
            Some(FaultKind::Delay) => {
                std::thread::sleep(Duration::from_millis(3));
                self.stream.write_all(bytes)?;
                Ok(())
            }
            Some(FaultKind::Duplicate) => {
                // The server discards the second copy by its sequence
                // number — the dedup path without a reconnect.
                self.stream.write_all(bytes)?;
                self.stream.write_all(bytes)?;
                Ok(())
            }
            Some(FaultKind::Drop) => {
                // Nothing reaches the wire; the server sees a clean close.
                let _ = self.stream.shutdown(Shutdown::Both);
                Err(injected_fault("drop"))
            }
            Some(FaultKind::Truncate) => {
                // The server sees a mid-frame truncation and ABORTs.
                let half = bytes.len() / 2;
                let _ = self.stream.write_all(&bytes[..half]);
                let _ = self.stream.flush();
                let _ = self.stream.shutdown(Shutdown::Both);
                Err(injected_fault("truncate"))
            }
            Some(FaultKind::Reset) => {
                // The frame lands whole, then the connection dies — the
                // replay after resume must be deduplicated (exactly-once).
                let _ = self.stream.write_all(bytes);
                let _ = self.stream.flush();
                let _ = self.stream.shutdown(Shutdown::Both);
                Err(injected_fault("reset"))
            }
        }
    }

    /// Blocks for one frame while streaming batches; only cumulative acks
    /// are legal here.
    fn read_one_ack(&mut self) -> Result<(), WireError> {
        match read_frame(&mut self.reader)? {
            Frame::BatchAck { seq, .. } => {
                self.note_ack(seq);
                Ok(())
            }
            Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
            other => Err(WireError::Payload(format!(
                "expected BATCH_ACK, got {other:?}"
            ))),
        }
    }

    /// Reads the next non-ack frame, folding any interleaved pipelined
    /// `BATCH_ACK`s into the ring on the way.
    fn read_response(&mut self) -> Result<Frame, WireError> {
        loop {
            match read_frame(&mut self.reader)? {
                Frame::BatchAck { seq, .. } => self.note_ack(seq),
                frame => return Ok(frame),
            }
        }
    }

    fn note_ack(&mut self, seq: u64) {
        self.acked_seq = self.acked_seq.max(seq);
        while self.ring.front().is_some_and(|(s, _)| *s <= self.acked_seq) {
            self.ring.pop_front();
        }
    }

    /// The fault boundary: transport-class errors trigger the bounded
    /// reconnect-and-resume loop; anything else (a server ABORT, a
    /// protocol violation) is fatal and propagates.
    fn recover(&mut self, e: WireError) -> Result<(), WireError> {
        let transport = matches!(
            e,
            WireError::Io(_) | WireError::Closed | WireError::Truncated | WireError::Timeout
        );
        if !transport || self.cfg.retries == 0 {
            return Err(e);
        }
        if self.session == 0 {
            return Err(WireError::Handshake(
                "connection faulted but the server issued no resume token \
                 (session table full) — cannot replay safely"
                    .to_string(),
            ));
        }
        let mut last = e;
        for attempt in 0..self.cfg.retries {
            std::thread::sleep(self.backoff_delay(attempt));
            match self.try_reconnect() {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Seeded exponential backoff with jitter: attempt `a` sleeps in
    /// `[cap/2, cap]` where `cap = min(base · 2^a, max)`.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base_ms.max(1);
        let cap = base
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cfg.backoff_max_ms.max(base));
        let jitter = splitmix64(&mut self.jitter) % (cap / 2 + 1);
        Duration::from_millis(cap - jitter)
    }

    /// One reconnect attempt: redial, re-handshake, RESUME, prune the ring
    /// by the server's authoritative acked seq, replay the rest verbatim.
    fn try_reconnect(&mut self) -> Result<(), WireError> {
        let (stream, mut reader) = dial(&self.addrs, &self.cfg)?;
        let mut writer = stream.try_clone()?;
        // The re-handshake auto-issues a throwaway token; RESUME replaces
        // it with our real session (the server forgets the throwaway).
        hello(&mut writer, &mut reader, self.fingerprint, self.auth)?;
        write_frame(
            &mut writer,
            &Frame::Resume {
                session: self.session,
                last_acked: self.acked_seq,
            },
        )?;
        writer.flush()?;
        let acked = match read_frame(&mut reader)? {
            Frame::ResumeAck { acked_seq } => acked_seq,
            Frame::Abort { code, message } => return Err(WireError::Remote { code, message }),
            other => {
                return Err(WireError::Payload(format!(
                    "expected RESUME_ACK, got {other:?}"
                )))
            }
        };
        self.stream = stream;
        self.reader = reader;
        self.note_ack(acked);
        // Replay what the server never ingested, oldest first, fault-free.
        for (_, bytes) in &self.ring {
            self.stream.write_all(bytes)?;
        }
        self.stream.flush()?;
        Ok(())
    }
}

/// Dials the first reachable address, honoring the configured deadline for
/// both the connect and subsequent reads.
fn dial(
    addrs: &[SocketAddr],
    cfg: &ClientConfig,
) -> Result<(TcpStream, BufReader<TcpStream>), WireError> {
    let timeout = match cfg.read_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    let mut last: Option<WireError> = None;
    for addr in addrs {
        let connected = match timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match connected {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                stream.set_read_timeout(timeout)?;
                let reader = BufReader::new(stream.try_clone()?);
                return Ok((stream, reader));
            }
            Err(e) => last = Some(WireError::from(e)),
        }
    }
    Err(last.unwrap_or_else(|| WireError::Handshake("address resolved to nothing".to_string())))
}

/// Runs the client half of the HELLO handshake; returns the server's
/// `(shards, session token, ack interval)`.
fn hello(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    fingerprint: u64,
    auth: u64,
) -> Result<(u32, u64, u32), WireError> {
    write_frame(writer, &Frame::Hello { fingerprint, auth })?;
    writer.flush()?;
    match read_frame(reader)? {
        Frame::HelloAck {
            fingerprint: theirs,
            shards,
            session,
            ack_every,
        } if theirs == fingerprint => Ok((shards, session, ack_every)),
        Frame::HelloAck {
            fingerprint: theirs,
            ..
        } => Err(WireError::Handshake(format!(
            "server echoed fingerprint {theirs:#018x}, expected {fingerprint:#018x}"
        ))),
        Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
        other => Err(WireError::Handshake(format!(
            "expected HELLO_ACK, got {other:?}"
        ))),
    }
}

/// The error an injected fault surfaces as — a connection reset, which the
/// recovery path classifies as transport-class like any real fault.
fn injected_fault(kind: &str) -> WireError {
    WireError::Io(std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        format!("injected {kind} fault"),
    ))
}
