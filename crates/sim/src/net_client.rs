//! The producer side of the ingestion wire: a blocking TCP client that
//! batches sanitized reports into [`CompactBatch`] frames for a
//! [`WireServer`](ldp_server::WireServer).
//!
//! One [`NetClient`] is one producer session: connect (HELLO/HELLO_ACK
//! fingerprint handshake), [`NetClient::push`] reports — buffered locally
//! and flushed as BATCH frames at the configured batch size —
//! interleave [`NetClient::snapshot`] round trips for incremental progress,
//! and [`NetClient::finish`] with a DRAIN/DRAIN_ACK handshake. The batch
//! buffer and the frame scratch buffer are reused across flushes, so a
//! steady-state producer allocates nothing per report.
//!
//! Backpressure needs no client-side code: when the server's shard queues
//! fill, its handler stops reading, the TCP window closes, and the
//! `write_all` inside [`NetClient::push`] simply blocks until the server
//! catches up.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ldp_core::solutions::{CompactBatch, DynSolution, SolutionReport};
use ldp_server::wire::{
    encode_batch_frame, read_frame, solution_fingerprint, write_frame, Frame, WireError,
    WireSnapshot,
};

/// Default reports per BATCH frame — matches the server's default
/// channel-message batch (`ServerConfig::batch`).
const DEFAULT_BATCH: usize = 1024;

/// A connected producer session speaking the `ldp_server::wire` protocol.
#[derive(Debug)]
pub struct NetClient {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
    batch: CompactBatch,
    batch_size: usize,
    frame_buf: Vec<u8>,
    server_shards: u32,
    sent: u64,
}

impl NetClient {
    /// Connects to a serving [`WireServer`](ldp_server::WireServer) and runs
    /// the HELLO handshake for `solution`. Fails with a typed error when
    /// the server aggregates for a different solution configuration (the
    /// fingerprint covers family, domain sizes and ε).
    pub fn connect(addr: impl ToSocketAddrs, solution: &DynSolution) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream.try_clone()?;
        let fingerprint = solution_fingerprint(solution);
        write_frame(&mut writer, &Frame::Hello { fingerprint })?;
        writer.flush()?;
        let server_shards = match read_frame(&mut reader)? {
            Frame::HelloAck {
                fingerprint: theirs,
                shards,
            } if theirs == fingerprint => shards,
            Frame::HelloAck {
                fingerprint: theirs,
                ..
            } => {
                return Err(WireError::Handshake(format!(
                    "server echoed fingerprint {theirs:#018x}, expected {fingerprint:#018x}"
                )))
            }
            Frame::Abort { code, message } => return Err(WireError::Remote { code, message }),
            other => {
                return Err(WireError::Handshake(format!(
                    "expected HELLO_ACK, got {other:?}"
                )))
            }
        };
        Ok(NetClient {
            reader,
            stream,
            batch: CompactBatch::new(),
            batch_size: DEFAULT_BATCH,
            frame_buf: Vec::new(),
            server_shards,
            sent: 0,
        })
    }

    /// Sets the reports-per-frame batch size (clamped to ≥ 1).
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// The server's shard count, as announced in HELLO_ACK.
    pub fn server_shards(&self) -> u32 {
        self.server_shards
    }

    /// Reports pushed into this session so far (buffered or sent).
    pub fn pushed(&self) -> u64 {
        self.sent + self.batch.len() as u64
    }

    /// Buffers one sanitized report, sending a BATCH frame whenever the
    /// buffer reaches the batch size. A blocked send *is* the backpressure
    /// path — see the [module docs](crate::net_client).
    pub fn push(&mut self, uid: u64, report: &SolutionReport) -> Result<(), WireError> {
        self.batch.push(uid, report);
        if self.batch.len() >= self.batch_size {
            self.flush_batch()?;
        }
        Ok(())
    }

    /// Sends any buffered reports and flushes the socket.
    pub fn flush(&mut self) -> Result<(), WireError> {
        if !self.batch.is_empty() {
            self.flush_batch()?;
        }
        self.stream.flush()?;
        Ok(())
    }

    /// Requests the server's current merged estimates; with `quiesce`, the
    /// server barriers first so the snapshot covers at least everything
    /// this producer pushed before the call (buffered reports are flushed
    /// first). This is the incremental estimate-while-ingesting stream.
    pub fn snapshot(&mut self, quiesce: bool) -> Result<WireSnapshot, WireError> {
        self.flush()?;
        write_frame(&mut self.stream, &Frame::SnapshotRequest { quiesce })?;
        self.stream.flush()?;
        match read_frame(&mut self.reader)? {
            Frame::Snapshot(snapshot) => Ok(snapshot),
            Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
            other => Err(WireError::Payload(format!(
                "expected SNAPSHOT, got {other:?}"
            ))),
        }
    }

    /// Ends the current collection round: flushes every buffered report,
    /// sends `EPOCH{round}` and blocks until the server's fleet barrier
    /// releases with the `EPOCH{round + 1}` ack (every producer of the
    /// declared fleet must send its own EPOCH frame before anyone is
    /// released — see `ldp_server::wire`). Returns the next round index.
    pub fn advance_epoch(&mut self, round: u64) -> Result<u64, WireError> {
        self.flush()?;
        write_frame(&mut self.stream, &Frame::Epoch { round })?;
        self.stream.flush()?;
        match read_frame(&mut self.reader)? {
            Frame::Epoch { round: next } if next == round + 1 => Ok(next),
            Frame::Epoch { round: next } => Err(WireError::Payload(format!(
                "epoch ack skewed: sent round {round}, server acked {next}"
            ))),
            Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
            other => Err(WireError::Payload(format!("expected EPOCH, got {other:?}"))),
        }
    }

    /// Ends the session: flushes every buffered report, sends DRAIN and
    /// waits for the server's DRAIN_ACK. Returns the number of reports the
    /// server ingested over this connection (always equal to
    /// [`NetClient::pushed`] on a healthy wire — the frames are checksummed
    /// and the ack counts post-validation envelopes).
    pub fn finish(mut self) -> Result<u64, WireError> {
        self.flush()?;
        write_frame(&mut self.stream, &Frame::Drain)?;
        self.stream.flush()?;
        match read_frame(&mut self.reader)? {
            Frame::DrainAck { n } => Ok(n),
            Frame::Abort { code, message } => Err(WireError::Remote { code, message }),
            other => Err(WireError::Payload(format!(
                "expected DRAIN_ACK, got {other:?}"
            ))),
        }
    }

    /// Serializes the buffered batch into the reused frame buffer and
    /// writes it out.
    fn flush_batch(&mut self) -> Result<(), WireError> {
        encode_batch_frame(&self.batch, &mut self.frame_buf);
        self.stream.write_all(&self.frame_buf)?;
        self.sent += self.batch.len() as u64;
        self.batch.clear();
        Ok(())
    }
}
