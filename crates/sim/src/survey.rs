//! Survey plans: which attributes each data collection covers (§4.2).
//!
//! The paper sets `#surveys = 5`, each survey drawing
//! `d_sv = Uniform{⌈d/2⌉, …, d}` attributes at random.

use rand::seq::index::sample;
use rand::Rng;

/// The attribute subsets of a sequence of surveys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyPlan {
    attrs: Vec<Vec<usize>>,
}

impl SurveyPlan {
    /// Generates `n_surveys` random subsets of `0..d`, each of size uniform
    /// in `[⌈d/2⌉, d]`, sorted ascending.
    ///
    /// # Panics
    /// Panics when `d < 2` or `n_surveys == 0`.
    pub fn generate<R: Rng + ?Sized>(d: usize, n_surveys: usize, rng: &mut R) -> Self {
        assert!(d >= 2, "need at least two attributes");
        assert!(n_surveys >= 1, "need at least one survey");
        let lo = d.div_ceil(2);
        let attrs = (0..n_surveys)
            .map(|_| {
                let d_sv = rng.random_range(lo..=d);
                let mut a: Vec<usize> = sample(rng, d, d_sv).into_iter().collect();
                a.sort_unstable();
                a
            })
            .collect();
        SurveyPlan { attrs }
    }

    /// A plan whose every survey covers all `d` attributes (used by Fig. 1
    /// style analyses and tests).
    pub fn full(d: usize, n_surveys: usize) -> Self {
        SurveyPlan {
            attrs: vec![(0..d).collect(); n_surveys],
        }
    }

    /// Builds a plan from explicit subsets.
    ///
    /// # Panics
    /// Panics when any subset is empty.
    pub fn from_subsets(attrs: Vec<Vec<usize>>) -> Self {
        assert!(!attrs.is_empty(), "need at least one survey");
        for a in &attrs {
            assert!(!a.is_empty(), "surveys cannot be empty");
        }
        SurveyPlan { attrs }
    }

    /// Number of surveys.
    pub fn n_surveys(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute subset of survey `sv`.
    pub fn attrs(&self, sv: usize) -> &[usize] {
        &self.attrs[sv]
    }

    /// Iterator over all survey subsets.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.attrs.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_subsets_respect_size_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for d in [2usize, 5, 10, 18] {
            let plan = SurveyPlan::generate(d, 20, &mut rng);
            assert_eq!(plan.n_surveys(), 20);
            for sv in plan.iter() {
                assert!(sv.len() >= d.div_ceil(2), "survey too small: {sv:?}");
                assert!(sv.len() <= d);
                assert!(sv.windows(2).all(|w| w[0] < w[1]), "not sorted/distinct");
                assert!(sv.iter().all(|&a| a < d));
            }
        }
    }

    #[test]
    fn full_plan_covers_everything() {
        let plan = SurveyPlan::full(4, 3);
        for sv in plan.iter() {
            assert_eq!(sv, &[0, 1, 2, 3]);
        }
    }

    #[test]
    fn survey_sizes_vary_across_draws() {
        let mut rng = StdRng::seed_from_u64(2);
        let plan = SurveyPlan::generate(10, 50, &mut rng);
        let sizes: std::collections::HashSet<usize> = plan.iter().map(<[usize]>::len).collect();
        assert!(sizes.len() > 1, "sizes never varied: {sizes:?}");
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn from_subsets_rejects_empty_survey() {
        SurveyPlan::from_subsets(vec![vec![0], vec![]]);
    }
}
