//! The Fig. 4 pipeline: re-identification against the RS+FD solution.
//!
//! Unlike SMP, the adversary does not see which attribute was sampled. For
//! every survey it (1) trains the §3.3 NK classifier on the survey's
//! sanitized tuples, (2) predicts each user's sampled attribute, (3) applies
//! the plausible-deniability rule to the predicted attribute's report, and
//! (4) accumulates the (possibly wrong on both counts — the paper's "chained
//! errors") profile entries used for re-identification.

use ldp_core::inference::{AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::profiling::Profile;
use ldp_core::solutions::{MultidimReport, RsFd, RsFdProtocol};
use ldp_datasets::Dataset;
use ldp_protocols::deniability::best_guess_report;
use ldp_protocols::hash::mix3;
use ldp_protocols::ProtocolError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::par::par_users;
use crate::survey::SurveyPlan;

/// Configuration of an RS+FD re-identification campaign.
#[derive(Debug, Clone)]
pub struct RsFdCampaignConfig {
    /// RS+FD variant (the paper evaluates RS+FD\[GRR\] as the middle ground).
    pub protocol: RsFdProtocol,
    /// Per-user budget ε.
    pub epsilon: f64,
    /// NK synthetic-profile factor `s/n` (the paper uses 1).
    pub synth_factor: f64,
    /// Classifier the adversary trains per survey.
    pub classifier: AttackClassifier,
}

/// Runs the campaign; returns `snapshots[sv][uid]` = user profile after
/// survey `sv + 1`, built from classifier-predicted sampled attributes.
/// Deterministic in `seed`, independent of `threads`.
///
/// # Errors
/// Propagates protocol-construction failures (bad ε or domain sizes).
pub fn run_rsfd_campaign(
    dataset: &Dataset,
    plan: &SurveyPlan,
    config: &RsFdCampaignConfig,
    seed: u64,
    threads: usize,
) -> Result<Vec<Vec<Profile>>, ProtocolError> {
    let n = dataset.n();
    let d = dataset.d();
    let mut profiles: Vec<Profile> = vec![Profile::new(); n];
    let mut already: Vec<Vec<bool>> = vec![vec![false; d]; n];
    let mut snapshots = Vec::with_capacity(plan.n_surveys());

    for (sv, attrs) in plan.iter().enumerate() {
        let ks: Vec<usize> = attrs.iter().map(|&a| dataset.schema().k(a)).collect();
        let rsfd = RsFd::new(config.protocol, &ks, config.epsilon)?;

        // Users sample (uniform metric: without replacement on *global*
        // attribute ids) and sanitize, in parallel.
        let sv_seed = mix3(seed, sv as u64, 0xF00D_CAFE);
        let reports: Vec<(MultidimReport, usize)> =
            par_users(n, threads, sv_seed, 0x000F_DCA3, |uid, rng| {
                let fresh: Vec<usize> = (0..attrs.len())
                    .filter(|&li| !already[uid][attrs[li]])
                    .collect();
                let local = if fresh.is_empty() {
                    rng.random_range(0..attrs.len())
                } else {
                    fresh[rng.random_range(0..fresh.len())]
                };
                let tuple: Vec<u32> = attrs.iter().map(|&a| dataset.value(uid, a)).collect();
                (rsfd.report_with_sampled(&tuple, local, rng), local)
            });
        for (uid, &(_, local)) in reports.iter().enumerate() {
            already[uid][attrs[local]] = true;
        }

        // Adversary: NK classifier over this survey's tuples.
        let observed: Vec<MultidimReport> = reports.iter().map(|(r, _)| r.clone()).collect();
        let mut attack_rng = StdRng::seed_from_u64(mix3(sv_seed, 0xA7_7A, 1));
        let (attack, _) = SampledAttributeAttack::train(
            &rsfd,
            &observed,
            &AttackModel::NoKnowledge {
                synth_factor: config.synth_factor,
            },
            &config.classifier,
            &mut attack_rng,
        );
        let predicted = attack.predict(&observed.iter().collect::<Vec<_>>());

        // Chain: predicted attribute → deniability guess on its report.
        for (uid, (&pred_local, (report, _))) in predicted.iter().zip(reports.iter()).enumerate() {
            let pred_local = pred_local as usize;
            let global = attrs[pred_local];
            let k = ks[pred_local];
            let mut rng = StdRng::seed_from_u64(mix3(sv_seed, uid as u64, 0x617E55));
            let value = best_guess_report(&report.values[pred_local], k, &mut rng);
            profiles[uid].observe(global, value);
        }
        snapshots.push(profiles.clone());
    }
    Ok(snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::reident::ReidentAttack;
    use ldp_datasets::corpora::adult_like;
    use ldp_gbdt::GbdtParams;

    fn fast_config(epsilon: f64) -> RsFdCampaignConfig {
        RsFdCampaignConfig {
            protocol: RsFdProtocol::Grr,
            epsilon,
            synth_factor: 1.0,
            classifier: AttackClassifier::Gbdt(GbdtParams {
                rounds: 8,
                max_depth: 4,
                ..GbdtParams::default()
            }),
        }
    }

    #[test]
    fn produces_growing_profiles() {
        let ds = adult_like(300, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let plan = SurveyPlan::generate(ds.d(), 3, &mut rng);
        let snaps = run_rsfd_campaign(&ds, &plan, &fast_config(4.0), 7, 2).unwrap();
        assert_eq!(snaps.len(), 3);
        for users in &snaps {
            assert_eq!(users.len(), 300);
        }
        // Profiles grow by at most one attribute per survey.
        for (first, third) in snaps[0].iter().zip(&snaps[2]) {
            assert!(first.len() <= 1);
            assert!(third.len() <= 3);
            assert!(third.len() >= first.len());
        }
    }

    #[test]
    fn rsfd_reident_is_much_weaker_than_perfect_profiles() {
        // Sanity proxy for Fig. 4: even at high ε, classifier + deniability
        // chaining keeps RID-ACC far from the perfect-profile ceiling.
        let ds = adult_like(400, 6);
        let all: Vec<usize> = (0..ds.d()).collect();
        let attack = ReidentAttack::build(&ds, &all);
        let mut rng = StdRng::seed_from_u64(2);
        let plan = SurveyPlan::generate(ds.d(), 3, &mut rng);
        let snaps = run_rsfd_campaign(&ds, &plan, &fast_config(8.0), 11, 2).unwrap();
        let acc = crate::rid_acc_parallel(&attack, &snaps[2], 10, 3, 2);
        // Perfect 3-attribute profiles would re-identify a large share of a
        // 400-user population; the chained attack must stay well below.
        assert!(acc < 60.0, "RID-ACC suspiciously high: {acc}");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let ds = adult_like(120, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let plan = SurveyPlan::generate(ds.d(), 2, &mut rng);
        let a = run_rsfd_campaign(&ds, &plan, &fast_config(2.0), 5, 1).unwrap();
        let b = run_rsfd_campaign(&ds, &plan, &fast_config(2.0), 5, 3).unwrap();
        for (ua, ub) in a[1].iter().zip(&b[1]) {
            assert_eq!(ua.entries(), ub.entries());
        }
    }
}
