//! The SMP multi-collection campaign (§4.2): data collection, adversary
//! observation and per-user profiling in one deterministic, thread-parallel
//! pipeline.

use ldp_core::pie::{self, PieDecision};
use ldp_core::profiling::Profile;
use ldp_datasets::Dataset;
use ldp_protocols::{deniability, FrequencyOracle, Oracle, ProtocolError, ProtocolKind, Report};
use rand::Rng;

use crate::par::par_users;
use crate::survey::SurveyPlan;

/// Privacy model the server enforces per attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrivacyModel {
    /// Standard ε-LDP with one frequency oracle per attribute.
    Ldp {
        /// Whole-budget ε (SMP spends it all on the sampled attribute).
        epsilon: f64,
    },
    /// The relaxed α-PIE model of Appendix C, parameterized by the target
    /// Bayes error β: small-domain attributes are sent in the clear.
    Pie {
        /// Target Bayes error probability `β_{U|S}`.
        beta: f64,
    },
}

/// How users sample attributes across surveys (§3.2.2–3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingSetting {
    /// Without replacement: a fresh attribute every survey (uniform privacy
    /// metric across users).
    Uniform,
    /// With replacement + memoization: repeated attributes re-send the first
    /// sanitized report (non-uniform privacy metric).
    NonUniform,
}

#[derive(Debug, Clone)]
enum AttrMechanism {
    /// α-PIE pass-through: the true value is sent unrandomized.
    Pass,
    /// An ε-LDP oracle.
    Oracle(Oracle),
}

/// A configured SMP collection campaign over one dataset schema.
#[derive(Debug, Clone)]
pub struct SmpCampaign {
    mechanisms: Vec<AttrMechanism>,
    setting: SamplingSetting,
}

impl SmpCampaign {
    /// Builds the per-attribute mechanisms. For [`PrivacyModel::Pie`], `n` is
    /// the population size entering the Bayes-error bound.
    pub fn new(
        kind: ProtocolKind,
        ks: &[usize],
        model: &PrivacyModel,
        n: usize,
        setting: SamplingSetting,
    ) -> Result<Self, ProtocolError> {
        let mechanisms = ks
            .iter()
            .map(|&k| match model {
                PrivacyModel::Ldp { epsilon } => {
                    Ok(AttrMechanism::Oracle(kind.build(k, *epsilon)?))
                }
                PrivacyModel::Pie { beta } => match pie::decide(*beta, n, k) {
                    PieDecision::PassThrough => Ok(AttrMechanism::Pass),
                    PieDecision::Randomize { epsilon } => {
                        Ok(AttrMechanism::Oracle(kind.build(k, epsilon)?))
                    }
                },
            })
            .collect::<Result<Vec<_>, ProtocolError>>()?;
        Ok(SmpCampaign {
            mechanisms,
            setting,
        })
    }

    /// Number of attributes covered.
    pub fn d(&self) -> usize {
        self.mechanisms.len()
    }

    /// How many attributes are sent in the clear (non-zero only under PIE).
    pub fn pass_through_count(&self) -> usize {
        self.mechanisms
            .iter()
            .filter(|m| matches!(m, AttrMechanism::Pass))
            .count()
    }

    /// Runs the full campaign: every user answers every survey, the adversary
    /// predicts each report's value and accumulates profiles.
    ///
    /// Returns one profile snapshot per survey:
    /// `snapshots[sv][uid]` is user `uid`'s profile after survey `sv + 1`.
    /// Deterministic in `seed`, independent of `threads`.
    pub fn run(
        &self,
        dataset: &Dataset,
        plan: &SurveyPlan,
        seed: u64,
        threads: usize,
    ) -> Vec<Vec<Profile>> {
        assert_eq!(
            dataset.d(),
            self.d(),
            "dataset does not match campaign schema"
        );
        let n = dataset.n();
        let n_surveys = plan.n_surveys();
        // Per-user sequential simulation, users in parallel.
        let per_user: Vec<Vec<Profile>> = par_users(n, threads, seed, 0x005A_3D17, |uid, rng| {
            self.simulate_user(dataset.row(uid), plan, rng)
        });
        // Transpose user-major → survey-major.
        let mut snapshots = vec![Vec::with_capacity(n); n_surveys];
        for user_snaps in per_user {
            for (sv, p) in user_snaps.into_iter().enumerate() {
                snapshots[sv].push(p);
            }
        }
        snapshots
    }

    /// One user's trajectory through all surveys; returns the profile after
    /// each survey.
    fn simulate_user<R: Rng + ?Sized>(
        &self,
        record: &[u32],
        plan: &SurveyPlan,
        rng: &mut R,
    ) -> Vec<Profile> {
        let d = self.d();
        let mut already = vec![false; d];
        let mut memo: Vec<Option<Report>> = vec![None; d];
        let mut profile = Profile::new();
        let mut out = Vec::with_capacity(plan.n_surveys());
        // Guess-candidate buffer reused across this user's surveys (OLH
        // preimages; see `best_guess_with`).
        let mut scratch = Vec::new();

        for attrs in plan.iter() {
            let attr = match self.setting {
                SamplingSetting::Uniform => {
                    let fresh: Vec<usize> =
                        attrs.iter().copied().filter(|&a| !already[a]).collect();
                    if fresh.is_empty() {
                        // Every survey attribute was already sampled; fall
                        // back to re-reporting a memoized one.
                        attrs[rng.random_range(0..attrs.len())]
                    } else {
                        fresh[rng.random_range(0..fresh.len())]
                    }
                }
                SamplingSetting::NonUniform => attrs[rng.random_range(0..attrs.len())],
            };
            already[attr] = true;

            // Memoization: a repeated attribute re-sends its first report.
            if memo[attr].is_none() {
                let report = match &self.mechanisms[attr] {
                    AttrMechanism::Pass => Report::Value(record[attr]),
                    AttrMechanism::Oracle(o) => o.randomize(record[attr], rng),
                };
                memo[attr] = Some(report);
            }
            let report = memo[attr].as_ref().expect("just inserted");

            let predicted = match &self.mechanisms[attr] {
                AttrMechanism::Pass => match report {
                    Report::Value(v) => *v,
                    _ => unreachable!("pass-through reports are plain values"),
                },
                AttrMechanism::Oracle(o) => {
                    deniability::best_guess_with(o, report, &mut scratch, rng)
                }
            };
            profile.observe(attr, predicted);
            out.push(profile.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::corpora::adult_like;
    use ldp_datasets::Schema;

    fn tiny_dataset(n: usize) -> Dataset {
        let schema = Schema::from_cardinalities(&[4, 3, 5, 2]);
        let data: Vec<u32> = (0..n)
            .flat_map(|i| {
                let i = i as u32;
                [i % 4, i % 3, i % 5, i % 2]
            })
            .collect();
        Dataset::new(schema, data)
    }

    #[test]
    fn snapshots_have_expected_shape_and_growth() {
        let ds = tiny_dataset(50);
        let plan = SurveyPlan::full(4, 3);
        let campaign = SmpCampaign::new(
            ProtocolKind::Grr,
            &[4, 3, 5, 2],
            &PrivacyModel::Ldp { epsilon: 2.0 },
            ds.n(),
            SamplingSetting::Uniform,
        )
        .unwrap();
        let snaps = campaign.run(&ds, &plan, 1, 2);
        assert_eq!(snaps.len(), 3);
        for (sv, users) in snaps.iter().enumerate() {
            assert_eq!(users.len(), 50);
            for p in users {
                // Uniform setting with full surveys: exactly sv+1 attributes.
                assert_eq!(p.len(), sv + 1);
            }
        }
    }

    #[test]
    fn uniform_setting_never_repeats_attributes() {
        let ds = tiny_dataset(30);
        let plan = SurveyPlan::full(4, 4);
        let campaign = SmpCampaign::new(
            ProtocolKind::Oue,
            &[4, 3, 5, 2],
            &PrivacyModel::Ldp { epsilon: 1.0 },
            ds.n(),
            SamplingSetting::Uniform,
        )
        .unwrap();
        let snaps = campaign.run(&ds, &plan, 2, 1);
        for p in &snaps[3] {
            assert_eq!(p.len(), 4, "all four attributes must be distinct");
        }
    }

    #[test]
    fn nonuniform_setting_can_repeat_attributes() {
        let ds = tiny_dataset(200);
        let plan = SurveyPlan::full(4, 4);
        let campaign = SmpCampaign::new(
            ProtocolKind::Grr,
            &[4, 3, 5, 2],
            &PrivacyModel::Ldp { epsilon: 1.0 },
            ds.n(),
            SamplingSetting::NonUniform,
        )
        .unwrap();
        let snaps = campaign.run(&ds, &plan, 3, 2);
        let partial = snaps[3].iter().filter(|p| p.len() < 4).count();
        assert!(partial > 0, "with replacement some users must repeat");
    }

    #[test]
    fn high_epsilon_profiles_are_mostly_correct_for_grr() {
        let ds = adult_like(300, 9);
        let ks = ds.schema().cardinalities();
        let plan = SurveyPlan::full(ds.d(), 3);
        let campaign = SmpCampaign::new(
            ProtocolKind::Grr,
            &ks,
            &PrivacyModel::Ldp { epsilon: 10.0 },
            ds.n(),
            SamplingSetting::Uniform,
        )
        .unwrap();
        let snaps = campaign.run(&ds, &plan, 4, 2);
        let avg_correct: f64 = snaps[2]
            .iter()
            .enumerate()
            .map(|(i, p)| p.correctness(ds.row(i)))
            .sum::<f64>()
            / ds.n() as f64;
        assert!(avg_correct > 0.9, "avg correctness {avg_correct}");
    }

    #[test]
    fn pie_model_passes_small_domains_through() {
        let ds = tiny_dataset(1000);
        let campaign = SmpCampaign::new(
            ProtocolKind::Grr,
            &[4, 3, 5, 2],
            &PrivacyModel::Pie { beta: 0.5 },
            ds.n(),
            SamplingSetting::Uniform,
        )
        .unwrap();
        // β = 0.5, n = 1000 → α ≈ 3.98 → all of k ∈ {2,3,4,5} pass through.
        assert_eq!(campaign.pass_through_count(), 4);
        // Tight β randomizes everything.
        let tight = SmpCampaign::new(
            ProtocolKind::Grr,
            &[4, 3, 5, 2],
            &PrivacyModel::Pie { beta: 0.95 },
            ds.n(),
            SamplingSetting::Uniform,
        )
        .unwrap();
        assert_eq!(tight.pass_through_count(), 0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let ds = tiny_dataset(40);
        let plan = SurveyPlan::full(4, 2);
        let campaign = SmpCampaign::new(
            ProtocolKind::Sue,
            &[4, 3, 5, 2],
            &PrivacyModel::Ldp { epsilon: 1.0 },
            ds.n(),
            SamplingSetting::Uniform,
        )
        .unwrap();
        let a = campaign.run(&ds, &plan, 11, 1);
        let b = campaign.run(&ds, &plan, 11, 4);
        assert_eq!(a, b);
    }
}
