//! The streaming collection pipeline: dataset → solution → sharded
//! aggregators → merged estimates, in one configurable, deterministic,
//! thread-parallel pass.
//!
//! This is the paper's §3.1 server loop at production shape: each worker
//! thread sanitizes its user range and absorbs the reports **directly** into
//! its own [`MultidimAggregator`] shard — no report is ever buffered — and
//! the shards are merged exactly (integer counts), so results are
//! bit-identical for every thread count and peak memory is
//! `O(threads · Σ_j k_j)` regardless of the population size.
//!
//! The per-user sanitize calls route through the protocols' word-parallel
//! paths (UE reports are built whole-word, never bit-by-bit — see the
//! sanitize budget in `docs/ARCHITECTURE.md`), and each user draws from its
//! own O(1)-seeded [`rand::rngs::SmallRng`] stream ([`crate::user_rng`]), so
//! a draw-count change inside one user's sanitization can never shift
//! another user's randomness — serial/sharded bit-identity survives
//! protocol-internal sampling changes.
//!
//! ```
//! use ldp_core::solutions::{RsFdProtocol, SolutionKind};
//! use ldp_sim::CollectionPipeline;
//! use ldp_datasets::corpora::adult_like;
//!
//! let dataset = adult_like(5_000, 7);
//! let run = CollectionPipeline::from_kind(
//!     SolutionKind::RsFd(RsFdProtocol::Grr),
//!     &dataset.schema().cardinalities(),
//!     1.0,
//! )
//! .unwrap()
//! .seed(42)
//! .threads(4)
//! .run(&dataset);
//! assert_eq!(run.n, 5_000);
//! assert_eq!(run.estimates.len(), dataset.d());
//! ```

use ldp_core::solutions::{DynSolution, MultidimAggregator, SolutionKind, SolutionReport};
use ldp_datasets::{Dataset, MixedDataset};
use ldp_protocols::hash::mix3;
use ldp_protocols::ProtocolError;
use ldp_server::{Envelope, LdpServer, ServerConfig, ServerSnapshot};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::par;
use crate::traffic::TrafficGenerator;

/// Salt separating pipeline user streams from the campaign engines'.
pub(crate) const USER_SALT: u64 = 0x00C0_11EC_7A11;

/// The pipeline's per-user report-sampling stream: a
/// [`SmallRng`] (SplitMix64, O(1) seeding) derived from
/// `mix3(seed, uid, USER_SALT)`. Seeding a full `StdRng` per user used to
/// cost a four-round seed expansion on the ingest hot path; the contract is
/// unchanged — each user's randomness is a pure function of
/// `(seed, uid, USER_SALT)`, so every pipeline mode is bit-identical for
/// every thread count. Exposed so tests and external drivers can regenerate
/// the exact wire (`tests/server_equivalence.rs` pins this scheme).
pub fn user_rng(seed: u64, uid: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix3(seed, uid, USER_SALT))
}

/// Configurable streaming collection run over one dataset. Build with
/// [`CollectionPipeline::new`] / [`CollectionPipeline::from_kind`], chain the
/// builder setters, then [`CollectionPipeline::run`].
#[derive(Debug, Clone)]
pub struct CollectionPipeline {
    solution: DynSolution,
    seed: u64,
    threads: usize,
}

/// The outcome of one pipeline pass.
#[derive(Debug, Clone)]
pub struct CollectionRun {
    /// The merged server state (reusable: keep absorbing or merge further
    /// shards, e.g. from other collection sites).
    pub aggregator: MultidimAggregator,
    /// Unbiased per-attribute frequency estimates.
    pub estimates: Vec<Vec<f64>>,
    /// Estimates projected onto the probability simplex.
    pub normalized: Vec<Vec<f64>>,
    /// Number of users collected.
    pub n: u64,
    /// Number of parallel shards that were merged.
    pub shards: usize,
}

impl CollectionPipeline {
    /// Wraps an already-built solution with default seed and thread count.
    pub fn new(solution: DynSolution) -> Self {
        CollectionPipeline {
            solution,
            seed: 0,
            threads: par::default_threads(),
        }
    }

    /// Builds the solution from its kind — the one-stop constructor for
    /// sweeps (`SolutionKind::build` under the hood).
    pub fn from_kind(
        kind: SolutionKind,
        ks: &[usize],
        epsilon: f64,
    ) -> Result<Self, ProtocolError> {
        Ok(CollectionPipeline::new(kind.build(ks, epsilon)?))
    }

    /// Sets the collection seed (per-user randomness derives from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (`1` runs inline; results are identical
    /// for every value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured solution.
    pub fn solution(&self) -> &DynSolution {
        &self.solution
    }

    /// Runs the pass: every user's tuple is sanitized with its own
    /// deterministic RNG and absorbed straight into a per-thread aggregator
    /// shard; shards merge into [`CollectionRun::aggregator`].
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's.
    pub fn run(&self, dataset: &Dataset) -> CollectionRun {
        self.assert_dataset(dataset);
        self.run_source(dataset.n(), self.dataset_reporter(dataset))
    }

    /// [`CollectionPipeline::run`] over a mixed categorical + continuous
    /// dataset: each user's categorical row and normalized numeric row are
    /// sanitized together through [`DynSolution::report_mixed`]. Identical
    /// determinism contract (per-user [`user_rng`] streams, exact shard
    /// merge).
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's (the solution must be a mixed one).
    pub fn run_mixed(&self, mixed: &MixedDataset) -> CollectionRun {
        self.assert_mixed(mixed);
        self.run_source(mixed.n(), self.mixed_reporter(mixed))
    }

    fn run_source(
        &self,
        n: usize,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
    ) -> CollectionRun {
        let shards = self.sanitize_shards(
            n,
            report,
            || self.solution.aggregator(),
            |agg, report| agg.absorb(&report),
        );
        self.merge_shards(shards)
    }

    /// [`CollectionPipeline::run`] that also hands back the wire: each user
    /// is sanitized **once**, the report is absorbed into its thread's
    /// aggregator shard *and* kept as the §3.1 adversary's observation.
    /// Buffers `O(n)` reports (the adversary must hold the wire anyway);
    /// use [`CollectionPipeline::run`] when nothing observes the messages.
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's.
    pub fn run_with_observation(&self, dataset: &Dataset) -> (CollectionRun, Vec<SolutionReport>) {
        self.assert_dataset(dataset);
        self.run_with_observation_source(dataset.n(), self.dataset_reporter(dataset))
    }

    /// [`CollectionPipeline::run_with_observation`] over a mixed dataset —
    /// the single-sanitization-pass entry for numeric attacks.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's.
    pub fn run_with_observation_mixed(
        &self,
        mixed: &MixedDataset,
    ) -> (CollectionRun, Vec<SolutionReport>) {
        self.assert_mixed(mixed);
        self.run_with_observation_source(mixed.n(), self.mixed_reporter(mixed))
    }

    fn run_with_observation_source(
        &self,
        n: usize,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
    ) -> (CollectionRun, Vec<SolutionReport>) {
        let chunks = self.sanitize_shards(
            n,
            report,
            || (self.solution.aggregator(), Vec::new()),
            |(agg, reports), report| {
                agg.absorb(&report);
                reports.push(report);
            },
        );
        let mut shards = Vec::with_capacity(chunks.len());
        let mut observed = Vec::with_capacity(n);
        for (agg, reports) in chunks {
            shards.push(agg);
            observed.extend(reports);
        }
        (self.merge_shards(shards), observed)
    }

    /// Regenerates the exact sanitized messages a [`CollectionPipeline::run`]
    /// with this configuration absorbs — the §3.1 adversary's wire view.
    /// Per-user randomness derives from the same `(seed, uid)` streams as
    /// the collection pass, so what the attack observes is bit-identical to
    /// what the server aggregated. Prefer
    /// [`CollectionPipeline::run_with_observation`] when the collection run
    /// is needed too (one sanitization pass instead of two).
    pub fn observe(&self, dataset: &Dataset) -> Vec<SolutionReport> {
        self.assert_dataset(dataset);
        self.sanitize_shards(
            dataset.n(),
            self.dataset_reporter(dataset),
            Vec::new,
            |reports, report| reports.push(report),
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// [`CollectionPipeline::observe`] over a mixed dataset.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's.
    pub fn observe_mixed(&self, mixed: &MixedDataset) -> Vec<SolutionReport> {
        self.assert_mixed(mixed);
        self.sanitize_shards(
            mixed.n(),
            self.mixed_reporter(mixed),
            Vec::new,
            |reports, report| reports.push(report),
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// The streamed twin of [`CollectionPipeline::run`]: spins up an
    /// [`LdpServer`] with one shard per configured thread, pushes every
    /// user's sanitized report through its bounded channels following the
    /// `traffic` arrival schedule, and gracefully drains it. The configured
    /// thread count drives **both** sides of the channel: each wave is
    /// sanitized by up to `threads` concurrent producers (the server's
    /// sender side is `Sync`) feeding `threads` aggregator shards.
    ///
    /// Per-user randomness derives from the same `(seed, uid)` streams as
    /// `run`, every user arrives exactly once whatever the traffic shape,
    /// and the server's shard merge is exact integer addition (independent
    /// of producer interleaving) — so the returned run is **bit-identical**
    /// to `run(dataset)` at equal seed, for every thread count and every
    /// [`TrafficShape`](crate::traffic::TrafficShape) (property-tested in
    /// `tests/server_equivalence.rs`).
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's, or when `traffic` was built for a different population
    /// size.
    pub fn serve(&self, dataset: &Dataset, traffic: &TrafficGenerator) -> CollectionRun {
        self.assert_dataset(dataset);
        self.serve_source(dataset.n(), traffic, self.dataset_reporter(dataset))
    }

    /// [`CollectionPipeline::serve`] over a mixed dataset: the streamed
    /// server drain of a mixed round, bit-identical to
    /// [`CollectionPipeline::run_mixed`] at equal seed for every thread
    /// count and traffic shape.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's, or when `traffic` was built for a different population
    /// size.
    pub fn serve_mixed(&self, mixed: &MixedDataset, traffic: &TrafficGenerator) -> CollectionRun {
        self.assert_mixed(mixed);
        self.serve_source(mixed.n(), traffic, self.mixed_reporter(mixed))
    }

    fn serve_source(
        &self,
        n: usize,
        traffic: &TrafficGenerator,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
    ) -> CollectionRun {
        assert_eq!(
            traffic.n(),
            n,
            "traffic schedule does not match the dataset population"
        );
        let server = LdpServer::spawn(
            self.solution.clone(),
            ServerConfig::default().shards(self.threads),
        );
        // Scoped producer threads are spawned per wave, so don't fan a small
        // wave out across the full thread budget: below this many users per
        // producer the spawn/join churn outweighs the parallel sanitization
        // (a steady 10M-user schedule has ~10k waves).
        const MIN_USERS_PER_PRODUCER: usize = 4096;
        for wave in traffic.waves() {
            // Parallel producers: sanitization dominates the cost, so the
            // wave is split into contiguous chunks ingested concurrently.
            let producers = self
                .threads
                .min(wave.len().div_ceil(MIN_USERS_PER_PRODUCER))
                .max(1);
            par::par_chunks(wave.len(), producers, |range| {
                server.ingest_batch(wave[range].iter().map(|&uid| {
                    let mut rng = user_rng(self.seed, uid);
                    Envelope {
                        uid,
                        report: report(uid as usize, &mut rng),
                    }
                }));
                Vec::<()>::new()
            });
        }
        CollectionRun::from_snapshot(server.drain())
    }

    /// The multi-process twin of [`CollectionPipeline::serve`]: drives one
    /// producer session against a remote
    /// [`WireServer`](ldp_server::WireServer) at `addr`, sanitizing every
    /// user of the traffic schedule and streaming the reports as checksummed
    /// BATCH frames. Returns the number of reports the server acknowledged
    /// at DRAIN.
    ///
    /// Per-user randomness derives from the same [`user_rng`]`(seed, uid)`
    /// streams as [`CollectionPipeline::run`], so a socket-fed server drain
    /// is **bit-identical** to the in-process run at equal seed
    /// (`tests/net_equivalence.rs` pins this across thread and connection
    /// counts).
    pub fn serve_remote(
        &self,
        dataset: &Dataset,
        traffic: &TrafficGenerator,
        addr: &str,
    ) -> Result<u64, ldp_server::WireError> {
        self.serve_remote_part(dataset, traffic, addr, 0, 1, 0, &mut |_| {})
    }

    /// [`CollectionPipeline::serve_remote`] for one producer of a fleet:
    /// streams only the users with `uid % parts == part`, so `parts`
    /// processes each running a distinct `part` cover the population
    /// exactly once between them. With `snapshot_every > 0`, a
    /// (non-quiescing) SNAPSHOT round trip is interleaved every that many
    /// waves and handed to `on_snapshot` — the incremental
    /// estimate-while-ingesting stream.
    ///
    /// # Panics
    /// Panics when the dataset does not match the solution schema, the
    /// traffic schedule does not match the population, or `part >= parts`.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_remote_part(
        &self,
        dataset: &Dataset,
        traffic: &TrafficGenerator,
        addr: &str,
        part: usize,
        parts: usize,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&ldp_server::WireSnapshot),
    ) -> Result<u64, ldp_server::WireError> {
        self.assert_dataset(dataset);
        self.serve_remote_source(
            dataset.n(),
            traffic,
            addr,
            part,
            parts,
            snapshot_every,
            on_snapshot,
            &self.dataset_reporter(dataset),
        )
    }

    /// [`CollectionPipeline::serve_remote`] over a mixed dataset: streams
    /// mixed reports to a remote [`WireServer`](ldp_server::WireServer)
    /// through the same checksummed BATCH frames (the compact wire encoding
    /// carries numeric entries unchanged). Bit-identical to
    /// [`CollectionPipeline::run_mixed`] at equal seed.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's, or when `traffic` was built for a different population
    /// size.
    pub fn serve_remote_mixed(
        &self,
        mixed: &MixedDataset,
        traffic: &TrafficGenerator,
        addr: &str,
    ) -> Result<u64, ldp_server::WireError> {
        self.assert_mixed(mixed);
        self.serve_remote_source(
            mixed.n(),
            traffic,
            addr,
            0,
            1,
            0,
            &mut |_| {},
            &self.mixed_reporter(mixed),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn serve_remote_source(
        &self,
        n: usize,
        traffic: &TrafficGenerator,
        addr: &str,
        part: usize,
        parts: usize,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&ldp_server::WireSnapshot),
        report: &dyn Fn(usize, &mut SmallRng) -> SolutionReport,
    ) -> Result<u64, ldp_server::WireError> {
        assert_eq!(
            traffic.n(),
            n,
            "traffic schedule does not match the dataset population"
        );
        assert!(
            part < parts,
            "producer part {part} outside fleet of {parts}"
        );
        let mut client = crate::net_client::NetClient::connect(addr, &self.solution)?;
        for (i, wave) in traffic.waves().enumerate() {
            for &uid in wave
                .iter()
                .filter(|&&uid| uid % parts as u64 == part as u64)
            {
                let mut rng = user_rng(self.seed, uid);
                client.push(uid, &report(uid as usize, &mut rng))?;
            }
            if snapshot_every > 0 && (i + 1) % snapshot_every == 0 {
                on_snapshot(&client.snapshot(false)?);
            }
        }
        client.finish()
    }

    /// The single seeded per-user sanitize loop behind `run`, `observe` and
    /// `run_with_observation` (and their `_mixed` twins): each worker chunk
    /// folds its users' reports into one `A` via `absorb`, with user `uid`'s
    /// randomness drawn from [`user_rng`]`(seed, uid)` and the report itself
    /// produced by the source-specific `report` closure. Chunk outputs come
    /// back in user order. Keeping every caller on this loop is what
    /// guarantees the adversary's observed wire is bit-identical to what the
    /// server aggregated.
    fn sanitize_shards<A: Send>(
        &self,
        n: usize,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
        init: impl Fn() -> A + Sync,
        absorb: impl Fn(&mut A, SolutionReport) + Sync,
    ) -> Vec<A> {
        par::par_chunks(n, self.threads, |range| {
            let mut acc = init();
            for uid in range {
                let mut rng = user_rng(self.seed, uid as u64);
                absorb(&mut acc, report(uid, &mut rng));
            }
            vec![acc]
        })
    }

    /// Per-user reporter over a categorical dataset.
    fn dataset_reporter<'a>(
        &'a self,
        dataset: &'a Dataset,
    ) -> impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync + 'a {
        move |uid, rng| self.solution.report(dataset.row(uid), rng)
    }

    /// Per-user reporter over a mixed dataset: categorical row + normalized
    /// numeric row through [`DynSolution::report_mixed`]. The dataset
    /// validated every numeric value at construction, so a reporting error
    /// here is a bug, not bad input.
    fn mixed_reporter<'a>(
        &'a self,
        mixed: &'a MixedDataset,
    ) -> impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync + 'a {
        move |uid, rng| {
            self.solution
                .report_mixed(mixed.cat().row(uid), mixed.num_row(uid), rng)
                .expect("mixed dataset values are validated at construction")
        }
    }

    fn assert_dataset(&self, dataset: &Dataset) {
        assert_eq!(
            dataset.d(),
            self.solution.d(),
            "dataset does not match the solution schema"
        );
    }

    fn assert_mixed(&self, mixed: &MixedDataset) {
        assert_eq!(
            mixed.ks(),
            self.solution.ks().to_vec(),
            "mixed dataset does not match the solution's heterogeneous ks"
        );
    }

    /// Merges per-thread shards into the final [`CollectionRun`].
    fn merge_shards(&self, shards: Vec<MultidimAggregator>) -> CollectionRun {
        let mut aggregator = self.solution.aggregator();
        let n_shards = shards.len();
        for shard in &shards {
            aggregator.merge(shard);
        }
        CollectionRun::from_snapshot(ServerSnapshot::from_aggregator(aggregator, n_shards.max(1)))
    }
}

impl CollectionRun {
    /// A run from a drained/merged server snapshot. Shared by the batch and
    /// streamed paths, so both produce identical estimates from identical
    /// counts — including the zero-users edge, where the estimates are
    /// all-zero (not NaN, and not a fabricated uniform distribution).
    fn from_snapshot(snapshot: ServerSnapshot) -> CollectionRun {
        CollectionRun {
            estimates: snapshot.estimates,
            normalized: snapshot.normalized,
            n: snapshot.n,
            shards: snapshot.shards,
            aggregator: snapshot.aggregator,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol};
    use ldp_datasets::corpora::adult_like;
    use ldp_datasets::{Dataset, Schema};
    use ldp_protocols::ProtocolKind;

    fn all_kinds() -> Vec<SolutionKind> {
        vec![
            SolutionKind::Spl(ProtocolKind::Grr),
            SolutionKind::Smp(ProtocolKind::Oue),
            SolutionKind::RsFd(RsFdProtocol::Grr),
            SolutionKind::RsRfd(RsRfdProtocol::Grr),
        ]
    }

    #[test]
    fn deterministic_and_thread_count_independent() {
        let ds = adult_like(600, 3);
        let ks = ds.schema().cardinalities();
        for kind in all_kinds() {
            let single = CollectionPipeline::from_kind(kind, &ks, 2.0)
                .unwrap()
                .seed(11)
                .threads(1)
                .run(&ds);
            let parallel = CollectionPipeline::from_kind(kind, &ks, 2.0)
                .unwrap()
                .seed(11)
                .threads(4)
                .run(&ds);
            assert_eq!(single.n, 600);
            assert_eq!(single.aggregator.counts(), parallel.aggregator.counts());
            for (a, b) in single
                .estimates
                .iter()
                .flatten()
                .zip(parallel.estimates.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind}: thread count leaked");
            }
        }
    }

    #[test]
    fn recovers_marginals_on_a_skewed_population() {
        // Everyone holds value 1 on attribute 0.
        let schema = Schema::from_cardinalities(&[4, 3]);
        let data: Vec<u32> = (0..20_000u32).flat_map(|i| [1, i % 3]).collect();
        let ds = Dataset::new(schema, data);
        let run = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &[4, 3], 3.0)
            .unwrap()
            .seed(5)
            .threads(3)
            .run(&ds);
        assert!(
            (run.estimates[0][1] - 1.0).abs() < 0.08,
            "{:?}",
            run.estimates[0]
        );
        let total: f64 = run.normalized[1].iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observe_replays_the_collected_messages_exactly() {
        let ds = adult_like(300, 3);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 2.0)
                .unwrap()
                .seed(9)
                .threads(3);
        let run = pipeline.run(&ds);
        let observed = pipeline.observe(&ds);
        assert_eq!(observed.len(), 300);
        // Absorbing the observed wire messages reproduces the server state
        // bit for bit: the adversary saw exactly what was collected.
        let mut agg = pipeline.solution().aggregator();
        for r in &observed {
            agg.absorb(r);
        }
        assert_eq!(agg.counts(), run.aggregator.counts());
    }

    #[test]
    fn run_with_observation_matches_separate_run_and_observe() {
        let ds = adult_like(250, 6);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Oue), &ks, 2.0)
                .unwrap()
                .seed(13)
                .threads(4);
        let (run, observed) = pipeline.run_with_observation(&ds);
        assert_eq!(
            run.aggregator.counts(),
            pipeline.run(&ds).aggregator.counts()
        );
        let replayed = pipeline.observe(&ds);
        assert_eq!(observed.len(), replayed.len());
        // Same rng streams → the single-pass wire equals the replayed wire.
        let mut a = pipeline.solution().aggregator();
        let mut b = pipeline.solution().aggregator();
        for (x, y) in observed.iter().zip(&replayed) {
            a.absorb(x);
            b.absorb(y);
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn serve_is_bit_identical_to_run() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let ds = adult_like(700, 5);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 1.5)
                .unwrap()
                .seed(21)
                .threads(3);
        let batch = pipeline.run(&ds);
        for shape in TrafficShape::ALL {
            let traffic = TrafficGenerator::new(shape, ds.n()).seed(21).wave(97);
            let served = pipeline.serve(&ds, &traffic);
            assert_eq!(served.n, batch.n, "{shape}");
            assert_eq!(
                served.aggregator.counts(),
                batch.aggregator.counts(),
                "{shape}"
            );
            for (a, b) in served
                .estimates
                .iter()
                .flatten()
                .zip(batch.estimates.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{shape}: serve leaked");
            }
        }
    }

    #[test]
    fn empty_dataset_yields_empty_but_valid_run() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let schema = Schema::from_cardinalities(&[4, 3]);
        let ds = Dataset::new(schema, Vec::new());
        for kind in all_kinds() {
            let pipeline = CollectionPipeline::from_kind(kind, &[4, 3], 1.0)
                .unwrap()
                .seed(1)
                .threads(4);
            for run in [
                pipeline.run(&ds),
                pipeline.serve(&ds, &TrafficGenerator::new(TrafficShape::Burst, 0)),
            ] {
                assert_eq!(run.n, 0, "{kind}");
                assert_eq!(run.estimates.len(), 2, "{kind}");
                assert!(
                    run.estimates.iter().flatten().all(|f| *f == 0.0),
                    "{kind}: empty run must estimate zeros, got {:?}",
                    run.estimates
                );
                assert!(
                    run.normalized.iter().flatten().all(|f| *f == 0.0),
                    "{kind}: no data must not fabricate a uniform distribution"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match the solution schema")]
    fn rejects_schema_mismatch() {
        let ds = adult_like(50, 1);
        CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &[4, 3], 1.0)
            .unwrap()
            .run(&ds);
    }

    fn mixed_pipeline(seed: u64) -> (ldp_datasets::MixedDataset, CollectionPipeline) {
        use ldp_core::solutions::MixedKind;
        use ldp_core::NumericKind;
        let mixed = ldp_datasets::mixed::mixed_survey_like(900, seed);
        let pipeline = CollectionPipeline::from_kind(
            SolutionKind::Mixed(MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: NumericKind::Hybrid,
                sample_k: 2,
            }),
            &mixed.ks(),
            2.0,
        )
        .unwrap()
        .seed(seed);
        (mixed, pipeline)
    }

    #[test]
    fn mixed_run_is_thread_count_independent() {
        let (mixed, pipeline) = mixed_pipeline(17);
        let serial = pipeline.clone().threads(1).run_mixed(&mixed);
        for threads in [2usize, 8] {
            let sharded = pipeline.clone().threads(threads).run_mixed(&mixed);
            assert_eq!(serial.n, sharded.n);
            assert_eq!(
                serial.aggregator.counts(),
                sharded.aggregator.counts(),
                "threads={threads}"
            );
            assert_eq!(
                serial.aggregator.num_sums(),
                sharded.aggregator.num_sums(),
                "threads={threads}: numeric fixed-point sums leaked thread count"
            );
            for (a, b) in serial
                .estimates
                .iter()
                .flatten()
                .zip(sharded.estimates.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn mixed_serve_is_bit_identical_to_run_mixed() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let (mixed, pipeline) = mixed_pipeline(23);
        let pipeline = pipeline.threads(3);
        let batch = pipeline.run_mixed(&mixed);
        let traffic = TrafficGenerator::new(TrafficShape::Burst, mixed.n())
            .seed(23)
            .wave(101);
        let served = pipeline.serve_mixed(&mixed, &traffic);
        assert_eq!(served.n, batch.n);
        assert_eq!(served.aggregator.counts(), batch.aggregator.counts());
        assert_eq!(served.aggregator.num_sums(), batch.aggregator.num_sums());
        for (a, b) in served
            .estimates
            .iter()
            .flatten()
            .zip(batch.estimates.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mixed_observation_replays_the_absorbed_wire() {
        let (mixed, pipeline) = mixed_pipeline(31);
        let pipeline = pipeline.threads(4);
        let (run, observed) = pipeline.run_with_observation_mixed(&mixed);
        assert_eq!(observed.len(), mixed.n());
        let mut agg = pipeline.solution().aggregator();
        for r in &observed {
            agg.absorb(r);
        }
        assert_eq!(agg.counts(), run.aggregator.counts());
        assert_eq!(agg.num_sums(), run.aggregator.num_sums());
        assert_eq!(
            observed.len(),
            pipeline.observe_mixed(&mixed).len(),
            "replayed wire must match the single-pass wire"
        );
    }

    #[test]
    #[should_panic(expected = "heterogeneous ks")]
    fn mixed_run_rejects_schema_mismatch() {
        let (mixed, _) = mixed_pipeline(1);
        let wrong = CollectionPipeline::from_kind(
            SolutionKind::Mixed(ldp_core::solutions::MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: ldp_core::NumericKind::Duchi,
                sample_k: 1,
            }),
            &[8, 5, 0],
            1.0,
        )
        .unwrap();
        wrong.run_mixed(&mixed);
    }
}
