//! The streaming collection pipeline: dataset → solution → sharded
//! aggregators → merged estimates, in one configurable, deterministic,
//! thread-parallel pass.
//!
//! This is the paper's §3.1 server loop at production shape: each worker
//! thread sanitizes its user range and absorbs the reports **directly** into
//! its own [`MultidimAggregator`] shard — no report is ever buffered — and
//! the shards are merged exactly (integer counts), so results are
//! bit-identical for every thread count and peak memory is
//! `O(threads · Σ_j k_j)` regardless of the population size.
//!
//! The per-user sanitize calls route through the protocols' word-parallel
//! paths (UE reports are built whole-word, never bit-by-bit — see the
//! sanitize budget in `docs/ARCHITECTURE.md`), and each user draws from its
//! own O(1)-seeded [`rand::rngs::SmallRng`] stream ([`crate::user_rng`]), so
//! a draw-count change inside one user's sanitization can never shift
//! another user's randomness — serial/sharded bit-identity survives
//! protocol-internal sampling changes.
//!
//! ```
//! use ldp_core::solutions::{RsFdProtocol, SolutionKind};
//! use ldp_sim::CollectionPipeline;
//! use ldp_datasets::corpora::adult_like;
//!
//! let dataset = adult_like(5_000, 7);
//! let run = CollectionPipeline::from_kind(
//!     SolutionKind::RsFd(RsFdProtocol::Grr),
//!     &dataset.schema().cardinalities(),
//!     1.0,
//! )
//! .unwrap()
//! .seed(42)
//! .threads(4)
//! .run(&dataset);
//! assert_eq!(run.n, 5_000);
//! assert_eq!(run.estimates.len(), dataset.d());
//! ```

use ldp_core::solutions::{DynSolution, MultidimAggregator, SolutionKind, SolutionReport};
use ldp_datasets::{Dataset, MixedDataset};
use ldp_protocols::hash::mix3;
use ldp_protocols::ProtocolError;
use ldp_server::{Envelope, EpochSnapshot, LdpServer, ServerConfig, ServerSnapshot};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::par;
use crate::traffic::TrafficGenerator;

/// Salt separating pipeline user streams from the campaign engines'.
pub(crate) const USER_SALT: u64 = 0x00C0_11EC_7A11;

/// Salt folding the collection round into the per-user rng streams of a
/// longitudinal campaign. Round 0 deliberately bypasses it (see
/// [`user_rng_round`]).
pub(crate) const ROUND_SALT: u64 = 0x0F1_0D5EED;

/// The pipeline's per-user report-sampling stream: a
/// [`SmallRng`] (SplitMix64, O(1) seeding) derived from
/// `mix3(seed, uid, USER_SALT)`. Seeding a full `StdRng` per user used to
/// cost a four-round seed expansion on the ingest hot path; the contract is
/// unchanged — each user's randomness is a pure function of
/// `(seed, uid, USER_SALT)`, so every pipeline mode is bit-identical for
/// every thread count. Exposed so tests and external drivers can regenerate
/// the exact wire (`tests/server_equivalence.rs` pins this scheme).
pub fn user_rng(seed: u64, uid: u64) -> SmallRng {
    SmallRng::seed_from_u64(mix3(seed, uid, USER_SALT))
}

/// The per-round twin of [`user_rng`] for longitudinal collection: user
/// `uid`'s sanitization stream in round `round`. Round 0 is **exactly**
/// [`user_rng`]`(seed, uid)` — the single-round pipeline, every
/// equivalence test pinning its scheme, and the memoization policy (which
/// replays round 0's report) all keep their bits — while later rounds fold
/// the round index into the seed so each fresh-randomness round draws an
/// independent stream.
pub fn user_rng_round(seed: u64, uid: u64, round: u64) -> SmallRng {
    if round == 0 {
        user_rng(seed, uid)
    } else {
        user_rng(mix3(seed, round, ROUND_SALT), uid)
    }
}

/// How the privacy budget is managed across the `R` rounds of a
/// longitudinal collection (the trade-off surveyed by Wang & Zhao et al.,
/// arXiv:1906.01777, and the lever behind the paper-style averaging risk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetPolicy {
    /// Naive ε-splitting: every round sanitizes with **fresh** randomness
    /// at ε/R, so the campaign composes to ε-LDP overall — but each fresh
    /// report leaks a new independent view the averaging adversary pools.
    SplitEps,
    /// RAPPOR-style memoization: sanitize once at full ε in round 0 and
    /// replay that memoized report bit-identically every round. Repeated
    /// rounds reveal nothing new, at the cost of a stable per-user
    /// pseudonym on the wire.
    Memoize,
}

impl BudgetPolicy {
    /// Every policy, in documentation order.
    pub const ALL: [BudgetPolicy; 2] = [BudgetPolicy::SplitEps, BudgetPolicy::Memoize];

    /// Stable identifier used by the `risks serve` CLI.
    pub fn id(self) -> &'static str {
        match self {
            BudgetPolicy::SplitEps => "split",
            BudgetPolicy::Memoize => "memoize",
        }
    }

    /// Looks a policy up by its identifier.
    pub fn from_id(id: &str) -> Option<BudgetPolicy> {
        BudgetPolicy::ALL.into_iter().find(|p| p.id() == id)
    }

    /// The solution one round of an `R`-round campaign collects with:
    /// the same solution at ε/R for [`BudgetPolicy::SplitEps`], the
    /// full-budget solution unchanged for [`BudgetPolicy::Memoize`]. Both
    /// the producers and the server must build this (equal fingerprints on
    /// the wire).
    pub fn round_solution(
        self,
        solution: &DynSolution,
        rounds: usize,
    ) -> Result<DynSolution, ProtocolError> {
        match self {
            BudgetPolicy::Memoize => Ok(solution.clone()),
            BudgetPolicy::SplitEps => solution
                .kind()
                .build(solution.ks(), solution.epsilon() / rounds.max(1) as f64),
        }
    }

    /// The rng round that produces round `round`'s report under this
    /// policy: memoization replays round 0's stream, ε-splitting draws
    /// fresh randomness per round.
    pub fn rng_round(self, round: u64) -> u64 {
        match self {
            BudgetPolicy::Memoize => 0,
            BudgetPolicy::SplitEps => round,
        }
    }
}

impl std::fmt::Display for BudgetPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// The outcome of a streamed longitudinal pass
/// ([`CollectionPipeline::serve_rounds`]): the cumulative drain over every
/// round plus the server's retained per-epoch windowed snapshots.
#[derive(Debug, Clone)]
pub struct LongitudinalRun {
    /// The full-campaign drain (all rounds merged) — bit-identical to
    /// batch-collecting every round's reports.
    pub cumulative: CollectionRun,
    /// The retained closed-epoch snapshots, oldest first (at most the
    /// server's configured retention).
    pub epochs: Vec<EpochSnapshot>,
}

/// Configurable streaming collection run over one dataset. Build with
/// [`CollectionPipeline::new`] / [`CollectionPipeline::from_kind`], chain the
/// builder setters, then [`CollectionPipeline::run`].
#[derive(Debug, Clone)]
pub struct CollectionPipeline {
    solution: DynSolution,
    seed: u64,
    threads: usize,
    net: crate::net_client::ClientConfig,
}

/// The outcome of one pipeline pass.
#[derive(Debug, Clone)]
pub struct CollectionRun {
    /// The merged server state (reusable: keep absorbing or merge further
    /// shards, e.g. from other collection sites).
    pub aggregator: MultidimAggregator,
    /// Unbiased per-attribute frequency estimates.
    pub estimates: Vec<Vec<f64>>,
    /// Estimates projected onto the probability simplex.
    pub normalized: Vec<Vec<f64>>,
    /// Number of users collected.
    pub n: u64,
    /// Number of parallel shards that were merged.
    pub shards: usize,
}

impl CollectionPipeline {
    /// Wraps an already-built solution with default seed and thread count.
    pub fn new(solution: DynSolution) -> Self {
        CollectionPipeline {
            solution,
            seed: 0,
            threads: par::default_threads(),
            net: crate::net_client::ClientConfig::default(),
        }
    }

    /// Builds the solution from its kind — the one-stop constructor for
    /// sweeps (`SolutionKind::build` under the hood).
    pub fn from_kind(
        kind: SolutionKind,
        ks: &[usize],
        epsilon: f64,
    ) -> Result<Self, ProtocolError> {
        Ok(CollectionPipeline::new(kind.build(ks, epsilon)?))
    }

    /// Sets the collection seed (per-user randomness derives from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker thread count (`1` runs inline; results are identical
    /// for every value).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the client-side wire behavior (auth, deadlines, reconnect
    /// policy, fault injection) the `serve_remote*` producers connect with.
    /// In-process passes ignore it.
    pub fn client(mut self, cfg: crate::net_client::ClientConfig) -> Self {
        self.net = cfg;
        self
    }

    /// The configured solution.
    pub fn solution(&self) -> &DynSolution {
        &self.solution
    }

    /// Runs the pass: every user's tuple is sanitized with its own
    /// deterministic RNG and absorbed straight into a per-thread aggregator
    /// shard; shards merge into [`CollectionRun::aggregator`].
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's.
    pub fn run(&self, dataset: &Dataset) -> CollectionRun {
        self.assert_dataset(dataset);
        self.run_source(dataset.n(), self.dataset_reporter(dataset))
    }

    /// [`CollectionPipeline::run`] over a mixed categorical + continuous
    /// dataset: each user's categorical row and normalized numeric row are
    /// sanitized together through [`DynSolution::report_mixed`]. Identical
    /// determinism contract (per-user [`user_rng`] streams, exact shard
    /// merge).
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's (the solution must be a mixed one).
    pub fn run_mixed(&self, mixed: &MixedDataset) -> CollectionRun {
        self.assert_mixed(mixed);
        self.run_source(mixed.n(), self.mixed_reporter(mixed))
    }

    fn run_source(
        &self,
        n: usize,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
    ) -> CollectionRun {
        let shards = self.sanitize_shards(
            n,
            report,
            || self.solution.aggregator(),
            |agg, report| agg.absorb(&report),
        );
        self.merge_shards(shards)
    }

    /// [`CollectionPipeline::run`] that also hands back the wire: each user
    /// is sanitized **once**, the report is absorbed into its thread's
    /// aggregator shard *and* kept as the §3.1 adversary's observation.
    /// Buffers `O(n)` reports (the adversary must hold the wire anyway);
    /// use [`CollectionPipeline::run`] when nothing observes the messages.
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's.
    pub fn run_with_observation(&self, dataset: &Dataset) -> (CollectionRun, Vec<SolutionReport>) {
        self.assert_dataset(dataset);
        self.run_with_observation_source(dataset.n(), self.dataset_reporter(dataset))
    }

    /// [`CollectionPipeline::run_with_observation`] over a mixed dataset —
    /// the single-sanitization-pass entry for numeric attacks.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's.
    pub fn run_with_observation_mixed(
        &self,
        mixed: &MixedDataset,
    ) -> (CollectionRun, Vec<SolutionReport>) {
        self.assert_mixed(mixed);
        self.run_with_observation_source(mixed.n(), self.mixed_reporter(mixed))
    }

    fn run_with_observation_source(
        &self,
        n: usize,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
    ) -> (CollectionRun, Vec<SolutionReport>) {
        let chunks = self.sanitize_shards(
            n,
            report,
            || (self.solution.aggregator(), Vec::new()),
            |(agg, reports), report| {
                agg.absorb(&report);
                reports.push(report);
            },
        );
        let mut shards = Vec::with_capacity(chunks.len());
        let mut observed = Vec::with_capacity(n);
        for (agg, reports) in chunks {
            shards.push(agg);
            observed.extend(reports);
        }
        (self.merge_shards(shards), observed)
    }

    /// Regenerates the exact sanitized messages a [`CollectionPipeline::run`]
    /// with this configuration absorbs — the §3.1 adversary's wire view.
    /// Per-user randomness derives from the same `(seed, uid)` streams as
    /// the collection pass, so what the attack observes is bit-identical to
    /// what the server aggregated. Prefer
    /// [`CollectionPipeline::run_with_observation`] when the collection run
    /// is needed too (one sanitization pass instead of two).
    pub fn observe(&self, dataset: &Dataset) -> Vec<SolutionReport> {
        self.assert_dataset(dataset);
        self.sanitize_shards(
            dataset.n(),
            self.dataset_reporter(dataset),
            Vec::new,
            |reports, report| reports.push(report),
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// [`CollectionPipeline::observe`] over a mixed dataset.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's.
    pub fn observe_mixed(&self, mixed: &MixedDataset) -> Vec<SolutionReport> {
        self.assert_mixed(mixed);
        self.sanitize_shards(
            mixed.n(),
            self.mixed_reporter(mixed),
            Vec::new,
            |reports, report| reports.push(report),
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// The streamed twin of [`CollectionPipeline::run`]: spins up an
    /// [`LdpServer`] with one shard per configured thread, pushes every
    /// user's sanitized report through its bounded channels following the
    /// `traffic` arrival schedule, and gracefully drains it. The configured
    /// thread count drives **both** sides of the channel: each wave is
    /// sanitized by up to `threads` concurrent producers (the server's
    /// sender side is `Sync`) feeding `threads` aggregator shards.
    ///
    /// Per-user randomness derives from the same `(seed, uid)` streams as
    /// `run`, every user arrives exactly once whatever the traffic shape,
    /// and the server's shard merge is exact integer addition (independent
    /// of producer interleaving) — so the returned run is **bit-identical**
    /// to `run(dataset)` at equal seed, for every thread count and every
    /// [`TrafficShape`](crate::traffic::TrafficShape) (property-tested in
    /// `tests/server_equivalence.rs`).
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's, or when `traffic` was built for a different population
    /// size.
    pub fn serve(&self, dataset: &Dataset, traffic: &TrafficGenerator) -> CollectionRun {
        self.assert_dataset(dataset);
        self.serve_source(dataset.n(), traffic, self.dataset_reporter(dataset))
    }

    /// [`CollectionPipeline::serve`] over a mixed dataset: the streamed
    /// server drain of a mixed round, bit-identical to
    /// [`CollectionPipeline::run_mixed`] at equal seed for every thread
    /// count and traffic shape.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's, or when `traffic` was built for a different population
    /// size.
    pub fn serve_mixed(&self, mixed: &MixedDataset, traffic: &TrafficGenerator) -> CollectionRun {
        self.assert_mixed(mixed);
        self.serve_source(mixed.n(), traffic, self.mixed_reporter(mixed))
    }

    fn serve_source(
        &self,
        n: usize,
        traffic: &TrafficGenerator,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
    ) -> CollectionRun {
        assert_eq!(
            traffic.n(),
            n,
            "traffic schedule does not match the dataset population"
        );
        let server = LdpServer::spawn(
            self.solution.clone(),
            ServerConfig::default().shards(self.threads),
        );
        self.serve_round_into(&server, traffic, 0, 0, &report);
        CollectionRun::from_snapshot(server.drain())
    }

    /// Streams one collection round's waves into a running server: arrivals
    /// follow `traffic.waves_for_round(round)`, per-user randomness draws
    /// from [`user_rng_round`]`(seed, uid, rng_round)`. The two round
    /// indices differ only under memoization, which replays round 0's
    /// reports (`rng_round == 0`) on every round's own arrival schedule.
    /// The single-round [`CollectionPipeline::serve`] is exactly `(0, 0)`.
    fn serve_round_into(
        &self,
        server: &LdpServer,
        traffic: &TrafficGenerator,
        round: u64,
        rng_round: u64,
        report: &(impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync),
    ) {
        // Scoped producer threads are spawned per wave, so don't fan a small
        // wave out across the full thread budget: below this many users per
        // producer the spawn/join churn outweighs the parallel sanitization
        // (a steady 10M-user schedule has ~10k waves).
        const MIN_USERS_PER_PRODUCER: usize = 4096;
        for wave in traffic.waves_for_round(round) {
            // Parallel producers: sanitization dominates the cost, so the
            // wave is split into contiguous chunks ingested concurrently.
            let producers = self
                .threads
                .min(wave.len().div_ceil(MIN_USERS_PER_PRODUCER))
                .max(1);
            par::par_chunks(wave.len(), producers, |range| {
                server.ingest_batch(wave[range].iter().map(|&uid| {
                    let mut rng = user_rng_round(self.seed, uid, rng_round);
                    Envelope {
                        uid,
                        report: report(uid as usize, &mut rng),
                    }
                }));
                Vec::<()>::new()
            });
        }
    }

    /// The pipeline one round of an `R`-round campaign under `policy`
    /// collects with: same seed and threads, solution rebuilt by
    /// [`BudgetPolicy::round_solution`].
    fn round_pipeline(
        &self,
        policy: BudgetPolicy,
        rounds: usize,
    ) -> Result<CollectionPipeline, ProtocolError> {
        Ok(CollectionPipeline {
            solution: policy.round_solution(&self.solution, rounds)?,
            seed: self.seed,
            threads: self.threads,
            net: self.net.clone(),
        })
    }

    /// The longitudinal twin of [`CollectionPipeline::run`]: collects the
    /// same population over `rounds` rounds under `policy`, returning one
    /// [`CollectionRun`] per round. The configured solution carries the
    /// **total** budget ε; [`BudgetPolicy::SplitEps`] sanitizes each round
    /// with fresh randomness at ε/R, [`BudgetPolicy::Memoize`] computes the
    /// round-0 report at full ε and replays it bit-identically (rounds > 0
    /// re-derive the identical report from the identical rng stream — the
    /// functional definition of memoization, with no per-user cache).
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's.
    pub fn run_rounds(
        &self,
        dataset: &Dataset,
        rounds: usize,
        policy: BudgetPolicy,
    ) -> Result<Vec<CollectionRun>, ProtocolError> {
        self.assert_dataset(dataset);
        let rounds = rounds.max(1);
        let per_round = self.round_pipeline(policy, rounds)?;
        Ok((0..rounds as u64)
            .map(|round| {
                let shards = per_round.sanitize_shards_round(
                    dataset.n(),
                    per_round.dataset_reporter(dataset),
                    || per_round.solution.aggregator(),
                    |agg, report| agg.absorb(&report),
                    policy.rng_round(round),
                );
                per_round.merge_shards(shards)
            })
            .collect())
    }

    /// The longitudinal twin of [`CollectionPipeline::observe`]: the full
    /// `rounds · n` wire a longitudinal adversary captures, round-major
    /// (round `r`'s reports occupy `r*n .. (r+1)*n`, each round in user
    /// order). Also returns the per-round solution the reports were
    /// sanitized with (ε/R under [`BudgetPolicy::SplitEps`]) — the attack
    /// needs it to build its matching profiles.
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's.
    pub fn observe_rounds(
        &self,
        dataset: &Dataset,
        rounds: usize,
        policy: BudgetPolicy,
    ) -> Result<(DynSolution, Vec<SolutionReport>), ProtocolError> {
        self.assert_dataset(dataset);
        let rounds = rounds.max(1);
        let per_round = self.round_pipeline(policy, rounds)?;
        let mut observed = Vec::with_capacity(rounds * dataset.n());
        for round in 0..rounds as u64 {
            let chunks = per_round.sanitize_shards_round(
                dataset.n(),
                per_round.dataset_reporter(dataset),
                Vec::new,
                |reports, report| reports.push(report),
                policy.rng_round(round),
            );
            observed.extend(chunks.into_iter().flatten());
        }
        Ok((per_round.solution, observed))
    }

    /// The streamed twin of [`CollectionPipeline::run_rounds`]: serves
    /// `rounds` epochs against one [`LdpServer`], each round following its
    /// own re-randomized arrival schedule
    /// ([`TrafficGenerator::waves_for_round`]) and closed with
    /// [`LdpServer::advance_epoch`], retaining the last `retain` windowed
    /// epoch snapshots. Round `r`'s epoch snapshot is **bit-identical** to
    /// `run_rounds(..)[r]` and the cumulative drain to all rounds merged,
    /// for every thread count and traffic shape.
    ///
    /// # Panics
    /// Panics when the dataset's attribute count differs from the
    /// solution's, or when `traffic` was built for a different population
    /// size.
    pub fn serve_rounds(
        &self,
        dataset: &Dataset,
        traffic: &TrafficGenerator,
        rounds: usize,
        policy: BudgetPolicy,
        retain: usize,
    ) -> Result<LongitudinalRun, ProtocolError> {
        self.assert_dataset(dataset);
        assert_eq!(
            traffic.n(),
            dataset.n(),
            "traffic schedule does not match the dataset population"
        );
        let rounds = rounds.max(1);
        let per_round = self.round_pipeline(policy, rounds)?;
        let report = per_round.dataset_reporter(dataset);
        let server = LdpServer::spawn(
            per_round.solution.clone(),
            ServerConfig::default().shards(self.threads).retain(retain),
        );
        for round in 0..rounds as u64 {
            per_round.serve_round_into(&server, traffic, round, policy.rng_round(round), &report);
            server.advance_epoch();
        }
        let epochs = server.epochs();
        let cumulative = CollectionRun::from_snapshot(server.drain());
        Ok(LongitudinalRun { cumulative, epochs })
    }

    /// The multi-process twin of [`CollectionPipeline::serve`]: drives one
    /// producer session against a remote
    /// [`WireServer`](ldp_server::WireServer) at `addr`, sanitizing every
    /// user of the traffic schedule and streaming the reports as checksummed
    /// BATCH frames. Returns the number of reports the server acknowledged
    /// at DRAIN.
    ///
    /// Per-user randomness derives from the same [`user_rng`]`(seed, uid)`
    /// streams as [`CollectionPipeline::run`], so a socket-fed server drain
    /// is **bit-identical** to the in-process run at equal seed
    /// (`tests/net_equivalence.rs` pins this across thread and connection
    /// counts).
    pub fn serve_remote(
        &self,
        dataset: &Dataset,
        traffic: &TrafficGenerator,
        addr: &str,
    ) -> Result<u64, ldp_server::WireError> {
        self.serve_remote_part(dataset, traffic, addr, 0, 1, 0, &mut |_| {})
    }

    /// [`CollectionPipeline::serve_remote`] for one producer of a fleet:
    /// streams only the users with `uid % parts == part`, so `parts`
    /// processes each running a distinct `part` cover the population
    /// exactly once between them. With `snapshot_every > 0`, a
    /// (non-quiescing) SNAPSHOT round trip is interleaved every that many
    /// waves and handed to `on_snapshot` — the incremental
    /// estimate-while-ingesting stream.
    ///
    /// # Panics
    /// Panics when the dataset does not match the solution schema, the
    /// traffic schedule does not match the population, or `part >= parts`.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_remote_part(
        &self,
        dataset: &Dataset,
        traffic: &TrafficGenerator,
        addr: &str,
        part: usize,
        parts: usize,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&ldp_server::WireSnapshot),
    ) -> Result<u64, ldp_server::WireError> {
        self.assert_dataset(dataset);
        self.serve_remote_source(
            dataset.n(),
            traffic,
            addr,
            part,
            parts,
            snapshot_every,
            on_snapshot,
            &self.dataset_reporter(dataset),
        )
    }

    /// The longitudinal twin of [`CollectionPipeline::serve_remote_part`]:
    /// one producer of a fleet streaming `rounds` rounds to a remote
    /// [`WireServer`](ldp_server::WireServer), with an `EPOCH` barrier
    /// round trip after each round so the whole fleet advances epochs in
    /// lockstep (the server must have been bound with
    /// `WireServer::producers(parts)`). The configured solution carries the
    /// total budget; the session handshakes with the **per-round** solution
    /// (ε/R under [`BudgetPolicy::SplitEps`]), so the server must build the
    /// same one. Returns the reports acknowledged at DRAIN.
    ///
    /// # Panics
    /// Panics when the dataset does not match the solution schema, the
    /// traffic schedule does not match the population, or `part >= parts`.
    #[allow(clippy::too_many_arguments)]
    pub fn serve_remote_rounds(
        &self,
        dataset: &Dataset,
        traffic: &TrafficGenerator,
        addr: &str,
        part: usize,
        parts: usize,
        rounds: usize,
        policy: BudgetPolicy,
    ) -> Result<u64, ldp_server::WireError> {
        self.assert_dataset(dataset);
        assert_eq!(
            traffic.n(),
            dataset.n(),
            "traffic schedule does not match the dataset population"
        );
        assert!(
            part < parts,
            "producer part {part} outside fleet of {parts}"
        );
        let rounds = rounds.max(1);
        let per_round = self.round_pipeline(policy, rounds).map_err(|e| {
            ldp_server::WireError::Handshake(format!("cannot build the per-round solution: {e}"))
        })?;
        let report = per_round.dataset_reporter(dataset);
        let mut client = crate::net_client::NetClient::connect_with(
            addr,
            &per_round.solution,
            self.net.clone(),
        )?;
        for round in 0..rounds as u64 {
            let rng_round = policy.rng_round(round);
            for wave in traffic.waves_for_round(round) {
                for &uid in wave
                    .iter()
                    .filter(|&&uid| uid % parts as u64 == part as u64)
                {
                    let mut rng = user_rng_round(self.seed, uid, rng_round);
                    client.push(uid, &report(uid as usize, &mut rng))?;
                }
            }
            client.advance_epoch(round)?;
        }
        client.finish()
    }

    /// [`CollectionPipeline::serve_remote`] over a mixed dataset: streams
    /// mixed reports to a remote [`WireServer`](ldp_server::WireServer)
    /// through the same checksummed BATCH frames (the compact wire encoding
    /// carries numeric entries unchanged). Bit-identical to
    /// [`CollectionPipeline::run_mixed`] at equal seed.
    ///
    /// # Panics
    /// Panics when the dataset's heterogeneous `ks` differ from the
    /// solution's, or when `traffic` was built for a different population
    /// size.
    pub fn serve_remote_mixed(
        &self,
        mixed: &MixedDataset,
        traffic: &TrafficGenerator,
        addr: &str,
    ) -> Result<u64, ldp_server::WireError> {
        self.assert_mixed(mixed);
        self.serve_remote_source(
            mixed.n(),
            traffic,
            addr,
            0,
            1,
            0,
            &mut |_| {},
            &self.mixed_reporter(mixed),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn serve_remote_source(
        &self,
        n: usize,
        traffic: &TrafficGenerator,
        addr: &str,
        part: usize,
        parts: usize,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&ldp_server::WireSnapshot),
        report: &dyn Fn(usize, &mut SmallRng) -> SolutionReport,
    ) -> Result<u64, ldp_server::WireError> {
        assert_eq!(
            traffic.n(),
            n,
            "traffic schedule does not match the dataset population"
        );
        assert!(
            part < parts,
            "producer part {part} outside fleet of {parts}"
        );
        let mut client =
            crate::net_client::NetClient::connect_with(addr, &self.solution, self.net.clone())?;
        for (i, wave) in traffic.waves().enumerate() {
            for &uid in wave
                .iter()
                .filter(|&&uid| uid % parts as u64 == part as u64)
            {
                let mut rng = user_rng(self.seed, uid);
                client.push(uid, &report(uid as usize, &mut rng))?;
            }
            if snapshot_every > 0 && (i + 1) % snapshot_every == 0 {
                on_snapshot(&client.snapshot(false)?);
            }
        }
        client.finish()
    }

    /// The single seeded per-user sanitize loop behind `run`, `observe` and
    /// `run_with_observation` (and their `_mixed` twins): each worker chunk
    /// folds its users' reports into one `A` via `absorb`, with user `uid`'s
    /// randomness drawn from [`user_rng`]`(seed, uid)` and the report itself
    /// produced by the source-specific `report` closure. Chunk outputs come
    /// back in user order. Keeping every caller on this loop is what
    /// guarantees the adversary's observed wire is bit-identical to what the
    /// server aggregated.
    fn sanitize_shards<A: Send>(
        &self,
        n: usize,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
        init: impl Fn() -> A + Sync,
        absorb: impl Fn(&mut A, SolutionReport) + Sync,
    ) -> Vec<A> {
        self.sanitize_shards_round(n, report, init, absorb, 0)
    }

    /// [`CollectionPipeline::sanitize_shards`] for one round of a
    /// longitudinal campaign: identical loop, but user `uid` draws from
    /// [`user_rng_round`]`(seed, uid, rng_round)`. Round 0 is the
    /// single-round loop bit for bit.
    fn sanitize_shards_round<A: Send>(
        &self,
        n: usize,
        report: impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync,
        init: impl Fn() -> A + Sync,
        absorb: impl Fn(&mut A, SolutionReport) + Sync,
        rng_round: u64,
    ) -> Vec<A> {
        par::par_chunks(n, self.threads, |range| {
            let mut acc = init();
            for uid in range {
                let mut rng = user_rng_round(self.seed, uid as u64, rng_round);
                absorb(&mut acc, report(uid, &mut rng));
            }
            vec![acc]
        })
    }

    /// Per-user reporter over a categorical dataset.
    fn dataset_reporter<'a>(
        &'a self,
        dataset: &'a Dataset,
    ) -> impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync + 'a {
        move |uid, rng| self.solution.report(dataset.row(uid), rng)
    }

    /// Per-user reporter over a mixed dataset: categorical row + normalized
    /// numeric row through [`DynSolution::report_mixed`]. The dataset
    /// validated every numeric value at construction, so a reporting error
    /// here is a bug, not bad input.
    fn mixed_reporter<'a>(
        &'a self,
        mixed: &'a MixedDataset,
    ) -> impl Fn(usize, &mut SmallRng) -> SolutionReport + Sync + 'a {
        move |uid, rng| {
            self.solution
                .report_mixed(mixed.cat().row(uid), mixed.num_row(uid), rng)
                .expect("mixed dataset values are validated at construction")
        }
    }

    fn assert_dataset(&self, dataset: &Dataset) {
        assert_eq!(
            dataset.d(),
            self.solution.d(),
            "dataset does not match the solution schema"
        );
    }

    fn assert_mixed(&self, mixed: &MixedDataset) {
        assert_eq!(
            mixed.ks(),
            self.solution.ks().to_vec(),
            "mixed dataset does not match the solution's heterogeneous ks"
        );
    }

    /// Merges per-thread shards into the final [`CollectionRun`].
    fn merge_shards(&self, shards: Vec<MultidimAggregator>) -> CollectionRun {
        let mut aggregator = self.solution.aggregator();
        let n_shards = shards.len();
        for shard in &shards {
            aggregator.merge(shard);
        }
        CollectionRun::from_snapshot(ServerSnapshot::from_aggregator(aggregator, n_shards.max(1)))
    }
}

impl CollectionRun {
    /// A run from a drained/merged server snapshot. Shared by the batch and
    /// streamed paths, so both produce identical estimates from identical
    /// counts — including the zero-users edge, where the estimates are
    /// all-zero (not NaN, and not a fabricated uniform distribution).
    pub(crate) fn from_snapshot(snapshot: ServerSnapshot) -> CollectionRun {
        CollectionRun {
            estimates: snapshot.estimates,
            normalized: snapshot.normalized,
            n: snapshot.n,
            shards: snapshot.shards,
            aggregator: snapshot.aggregator,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol};
    use ldp_datasets::corpora::adult_like;
    use ldp_datasets::{Dataset, Schema};
    use ldp_protocols::ProtocolKind;

    fn all_kinds() -> Vec<SolutionKind> {
        vec![
            SolutionKind::Spl(ProtocolKind::Grr),
            SolutionKind::Smp(ProtocolKind::Oue),
            SolutionKind::RsFd(RsFdProtocol::Grr),
            SolutionKind::RsRfd(RsRfdProtocol::Grr),
        ]
    }

    #[test]
    fn deterministic_and_thread_count_independent() {
        let ds = adult_like(600, 3);
        let ks = ds.schema().cardinalities();
        for kind in all_kinds() {
            let single = CollectionPipeline::from_kind(kind, &ks, 2.0)
                .unwrap()
                .seed(11)
                .threads(1)
                .run(&ds);
            let parallel = CollectionPipeline::from_kind(kind, &ks, 2.0)
                .unwrap()
                .seed(11)
                .threads(4)
                .run(&ds);
            assert_eq!(single.n, 600);
            assert_eq!(single.aggregator.counts(), parallel.aggregator.counts());
            for (a, b) in single
                .estimates
                .iter()
                .flatten()
                .zip(parallel.estimates.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind}: thread count leaked");
            }
        }
    }

    #[test]
    fn recovers_marginals_on_a_skewed_population() {
        // Everyone holds value 1 on attribute 0.
        let schema = Schema::from_cardinalities(&[4, 3]);
        let data: Vec<u32> = (0..20_000u32).flat_map(|i| [1, i % 3]).collect();
        let ds = Dataset::new(schema, data);
        let run = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &[4, 3], 3.0)
            .unwrap()
            .seed(5)
            .threads(3)
            .run(&ds);
        assert!(
            (run.estimates[0][1] - 1.0).abs() < 0.08,
            "{:?}",
            run.estimates[0]
        );
        let total: f64 = run.normalized[1].iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observe_replays_the_collected_messages_exactly() {
        let ds = adult_like(300, 3);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 2.0)
                .unwrap()
                .seed(9)
                .threads(3);
        let run = pipeline.run(&ds);
        let observed = pipeline.observe(&ds);
        assert_eq!(observed.len(), 300);
        // Absorbing the observed wire messages reproduces the server state
        // bit for bit: the adversary saw exactly what was collected.
        let mut agg = pipeline.solution().aggregator();
        for r in &observed {
            agg.absorb(r);
        }
        assert_eq!(agg.counts(), run.aggregator.counts());
    }

    #[test]
    fn run_with_observation_matches_separate_run_and_observe() {
        let ds = adult_like(250, 6);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Oue), &ks, 2.0)
                .unwrap()
                .seed(13)
                .threads(4);
        let (run, observed) = pipeline.run_with_observation(&ds);
        assert_eq!(
            run.aggregator.counts(),
            pipeline.run(&ds).aggregator.counts()
        );
        let replayed = pipeline.observe(&ds);
        assert_eq!(observed.len(), replayed.len());
        // Same rng streams → the single-pass wire equals the replayed wire.
        let mut a = pipeline.solution().aggregator();
        let mut b = pipeline.solution().aggregator();
        for (x, y) in observed.iter().zip(&replayed) {
            a.absorb(x);
            b.absorb(y);
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn serve_is_bit_identical_to_run() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let ds = adult_like(700, 5);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 1.5)
                .unwrap()
                .seed(21)
                .threads(3);
        let batch = pipeline.run(&ds);
        for shape in TrafficShape::ALL {
            let traffic = TrafficGenerator::new(shape, ds.n()).seed(21).wave(97);
            let served = pipeline.serve(&ds, &traffic);
            assert_eq!(served.n, batch.n, "{shape}");
            assert_eq!(
                served.aggregator.counts(),
                batch.aggregator.counts(),
                "{shape}"
            );
            for (a, b) in served
                .estimates
                .iter()
                .flatten()
                .zip(batch.estimates.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{shape}: serve leaked");
            }
        }
    }

    #[test]
    fn empty_dataset_yields_empty_but_valid_run() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let schema = Schema::from_cardinalities(&[4, 3]);
        let ds = Dataset::new(schema, Vec::new());
        for kind in all_kinds() {
            let pipeline = CollectionPipeline::from_kind(kind, &[4, 3], 1.0)
                .unwrap()
                .seed(1)
                .threads(4);
            for run in [
                pipeline.run(&ds),
                pipeline.serve(&ds, &TrafficGenerator::new(TrafficShape::Burst, 0)),
            ] {
                assert_eq!(run.n, 0, "{kind}");
                assert_eq!(run.estimates.len(), 2, "{kind}");
                assert!(
                    run.estimates.iter().flatten().all(|f| *f == 0.0),
                    "{kind}: empty run must estimate zeros, got {:?}",
                    run.estimates
                );
                assert!(
                    run.normalized.iter().flatten().all(|f| *f == 0.0),
                    "{kind}: no data must not fabricate a uniform distribution"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match the solution schema")]
    fn rejects_schema_mismatch() {
        let ds = adult_like(50, 1);
        CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &[4, 3], 1.0)
            .unwrap()
            .run(&ds);
    }

    fn mixed_pipeline(seed: u64) -> (ldp_datasets::MixedDataset, CollectionPipeline) {
        use ldp_core::solutions::MixedKind;
        use ldp_core::NumericKind;
        let mixed = ldp_datasets::mixed::mixed_survey_like(900, seed);
        let pipeline = CollectionPipeline::from_kind(
            SolutionKind::Mixed(MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: NumericKind::Hybrid,
                sample_k: 2,
            }),
            &mixed.ks(),
            2.0,
        )
        .unwrap()
        .seed(seed);
        (mixed, pipeline)
    }

    #[test]
    fn mixed_run_is_thread_count_independent() {
        let (mixed, pipeline) = mixed_pipeline(17);
        let serial = pipeline.clone().threads(1).run_mixed(&mixed);
        for threads in [2usize, 8] {
            let sharded = pipeline.clone().threads(threads).run_mixed(&mixed);
            assert_eq!(serial.n, sharded.n);
            assert_eq!(
                serial.aggregator.counts(),
                sharded.aggregator.counts(),
                "threads={threads}"
            );
            assert_eq!(
                serial.aggregator.num_sums(),
                sharded.aggregator.num_sums(),
                "threads={threads}: numeric fixed-point sums leaked thread count"
            );
            for (a, b) in serial
                .estimates
                .iter()
                .flatten()
                .zip(sharded.estimates.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn mixed_serve_is_bit_identical_to_run_mixed() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let (mixed, pipeline) = mixed_pipeline(23);
        let pipeline = pipeline.threads(3);
        let batch = pipeline.run_mixed(&mixed);
        let traffic = TrafficGenerator::new(TrafficShape::Burst, mixed.n())
            .seed(23)
            .wave(101);
        let served = pipeline.serve_mixed(&mixed, &traffic);
        assert_eq!(served.n, batch.n);
        assert_eq!(served.aggregator.counts(), batch.aggregator.counts());
        assert_eq!(served.aggregator.num_sums(), batch.aggregator.num_sums());
        for (a, b) in served
            .estimates
            .iter()
            .flatten()
            .zip(batch.estimates.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mixed_observation_replays_the_absorbed_wire() {
        let (mixed, pipeline) = mixed_pipeline(31);
        let pipeline = pipeline.threads(4);
        let (run, observed) = pipeline.run_with_observation_mixed(&mixed);
        assert_eq!(observed.len(), mixed.n());
        let mut agg = pipeline.solution().aggregator();
        for r in &observed {
            agg.absorb(r);
        }
        assert_eq!(agg.counts(), run.aggregator.counts());
        assert_eq!(agg.num_sums(), run.aggregator.num_sums());
        assert_eq!(
            observed.len(),
            pipeline.observe_mixed(&mixed).len(),
            "replayed wire must match the single-pass wire"
        );
    }

    #[test]
    fn budget_policy_ids_roundtrip() {
        for policy in BudgetPolicy::ALL {
            assert_eq!(BudgetPolicy::from_id(policy.id()), Some(policy));
            assert_eq!(policy.to_string(), policy.id());
        }
        assert_eq!(BudgetPolicy::from_id("nope"), None);
    }

    #[test]
    fn one_round_campaigns_match_the_single_round_run_bit_for_bit() {
        let ds = adult_like(400, 4);
        let ks = ds.schema().cardinalities();
        for kind in all_kinds() {
            let pipeline = CollectionPipeline::from_kind(kind, &ks, 2.0)
                .unwrap()
                .seed(33)
                .threads(3);
            let single = pipeline.run(&ds);
            for policy in BudgetPolicy::ALL {
                let rounds = pipeline.run_rounds(&ds, 1, policy).unwrap();
                assert_eq!(rounds.len(), 1, "{kind}/{policy}");
                assert_eq!(
                    rounds[0].aggregator.counts(),
                    single.aggregator.counts(),
                    "{kind}/{policy}: R=1 must degenerate to the single-round pipeline"
                );
            }
        }
    }

    #[test]
    fn memoize_replays_round_zero_bit_identically() {
        let ds = adult_like(500, 3);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, 4.0)
                .unwrap()
                .seed(7)
                .threads(2);
        let runs = pipeline.run_rounds(&ds, 4, BudgetPolicy::Memoize).unwrap();
        for (r, run) in runs.iter().enumerate() {
            assert_eq!(
                run.aggregator.counts(),
                runs[0].aggregator.counts(),
                "memoized round {r} must replay round 0's reports exactly"
            );
        }
        // Full-ε: round 0 equals the single-round run.
        assert_eq!(
            runs[0].aggregator.counts(),
            pipeline.run(&ds).aggregator.counts()
        );
    }

    #[test]
    fn split_eps_draws_fresh_randomness_each_round() {
        let ds = adult_like(500, 3);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, 4.0)
                .unwrap()
                .seed(7)
                .threads(2);
        let runs = pipeline.run_rounds(&ds, 3, BudgetPolicy::SplitEps).unwrap();
        assert_ne!(
            runs[0].aggregator.counts(),
            runs[1].aggregator.counts(),
            "ε-splitting rounds must be independently randomized"
        );
        assert_ne!(runs[1].aggregator.counts(), runs[2].aggregator.counts());
    }

    #[test]
    fn observe_rounds_is_round_major_and_replays_run_rounds() {
        let ds = adult_like(300, 3);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 3.0)
                .unwrap()
                .seed(19)
                .threads(3);
        for policy in BudgetPolicy::ALL {
            let runs = pipeline.run_rounds(&ds, 3, policy).unwrap();
            let (round_solution, observed) = pipeline.observe_rounds(&ds, 3, policy).unwrap();
            assert_eq!(observed.len(), 3 * ds.n(), "{policy}");
            for (r, run) in runs.iter().enumerate() {
                let mut agg = round_solution.aggregator();
                for report in &observed[r * ds.n()..(r + 1) * ds.n()] {
                    agg.absorb(report);
                }
                assert_eq!(
                    agg.counts(),
                    run.aggregator.counts(),
                    "{policy}: round {r}'s observed slice must replay its run"
                );
            }
        }
    }

    #[test]
    fn serve_rounds_epochs_match_batch_rounds_and_cumulative_drain() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let ds = adult_like(600, 5);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::RsFd(RsFdProtocol::Grr), &ks, 2.0)
                .unwrap()
                .seed(29)
                .threads(3);
        for policy in BudgetPolicy::ALL {
            let runs = pipeline.run_rounds(&ds, 3, policy).unwrap();
            let traffic = TrafficGenerator::new(TrafficShape::Churn, ds.n())
                .seed(29)
                .wave(113);
            let served = pipeline.serve_rounds(&ds, &traffic, 3, policy, 3).unwrap();
            assert_eq!(served.epochs.len(), 3, "{policy}");
            let mut merged = policy
                .round_solution(pipeline.solution(), 3)
                .unwrap()
                .aggregator();
            for (r, (epoch, run)) in served.epochs.iter().zip(&runs).enumerate() {
                assert_eq!(epoch.epoch, r as u64, "{policy}");
                assert_eq!(
                    epoch.snapshot.aggregator.counts(),
                    run.aggregator.counts(),
                    "{policy}: epoch {r}'s window must be bit-identical to its batch round"
                );
                merged.merge(&run.aggregator);
            }
            assert_eq!(
                served.cumulative.aggregator.counts(),
                merged.counts(),
                "{policy}: cumulative drain must merge every round exactly"
            );
            assert_eq!(served.cumulative.n, 3 * ds.n() as u64, "{policy}");
        }
    }

    #[test]
    fn serve_rounds_retention_keeps_only_the_last_windows() {
        use crate::traffic::{TrafficGenerator, TrafficShape};
        let ds = adult_like(200, 2);
        let ks = ds.schema().cardinalities();
        let pipeline =
            CollectionPipeline::from_kind(SolutionKind::Spl(ProtocolKind::Grr), &ks, 2.0)
                .unwrap()
                .seed(3)
                .threads(2);
        let traffic = TrafficGenerator::new(TrafficShape::Steady, ds.n()).seed(3);
        let served = pipeline
            .serve_rounds(&ds, &traffic, 4, BudgetPolicy::SplitEps, 2)
            .unwrap();
        assert_eq!(
            served.epochs.iter().map(|e| e.epoch).collect::<Vec<_>>(),
            vec![2, 3],
            "retention must keep the newest windows"
        );
        assert_eq!(served.cumulative.n, 4 * ds.n() as u64);
    }

    #[test]
    #[should_panic(expected = "heterogeneous ks")]
    fn mixed_run_rejects_schema_mismatch() {
        let (mixed, _) = mixed_pipeline(1);
        let wrong = CollectionPipeline::from_kind(
            SolutionKind::Mixed(ldp_core::solutions::MixedKind {
                protocol: ProtocolKind::Grr,
                numeric: ldp_core::NumericKind::Duchi,
                sample_k: 1,
            }),
            &[8, 5, 0],
            1.0,
        )
        .unwrap();
        wrong.run_mixed(&mixed);
    }
}
