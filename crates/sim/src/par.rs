//! Minimal deterministic scoped-thread parallelism.
//!
//! The experiments parallelize over users or parameter points; results must
//! not depend on the thread count, so every work item derives its randomness
//! from its own index. These helpers only split index ranges.

/// Runs `f` over `0..n` split into at most `threads` contiguous chunks and
/// concatenates the per-chunk outputs in order. With `threads <= 1` (or tiny
/// `n`) everything runs inline. Zero work items (`n == 0`) yield an empty
/// output without invoking `f` or spawning anything — callers fanning out
/// over an empty dataset get an empty-but-valid result, never a panic.
pub fn par_chunks<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < 2 {
        return f(0..n);
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move || f(start..end)));
        }
        out = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
    });
    let mut flat = Vec::with_capacity(n);
    for v in out {
        flat.extend(v);
    }
    flat
}

/// Maps `f` over the users `0..n` in parallel, handing each user its own
/// [`StdRng`](rand::rngs::StdRng) derived from `(seed, uid, salt)` — the
/// single sharding idiom
/// shared by the campaigns, the collection pipeline and the attack pipeline.
/// Deterministic in `seed`, independent of `threads`.
pub fn par_users<T, F>(n: usize, threads: usize, seed: u64, salt: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut rand::rngs::StdRng) -> T + Sync,
{
    par_users_with(n, threads, seed, salt, || (), |uid, (), rng| f(uid, rng))
}

/// [`par_users`] with a per-shard scratch state: `init` builds one `S` per
/// worker chunk and `f` reuses it across that chunk's users, so hot loops
/// (e.g. the re-identification matcher's [`MatchScratch`]) stay
/// allocation-flat. Same per-user rng streams as [`par_users`], so results
/// remain independent of the thread count.
///
/// [`MatchScratch`]: ldp_core::reident::MatchScratch
pub fn par_users_with<S, T, I, F>(
    n: usize,
    threads: usize,
    seed: u64,
    salt: u64,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S, &mut rand::rngs::StdRng) -> T + Sync,
{
    use ldp_protocols::hash::mix3;
    use rand::SeedableRng;
    par_chunks(n, threads, |range| {
        let mut state = init();
        range
            .map(|uid| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(mix3(seed, uid as u64, salt));
                f(uid, &mut state, &mut rng)
            })
            .collect()
    })
}

/// Maps `f` over `0..n` in parallel, one output per index, in order.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_chunks(n, threads, |range| range.map(&f).collect())
}

/// Dynamic work-queue scheduling for **heterogeneous** jobs: `workers`
/// threads pull indices `0..n` from a shared atomic counter, so a long job
/// never blocks the queue the way [`par_chunks`]' static ranges would.
/// Callers wanting longest-first completion sort their jobs by descending
/// cost before calling. Outputs come back in index order. Zero jobs
/// (`n == 0`, e.g. every experiment was a cache hit) return an empty vector
/// without spawning anything.
///
/// This is the cross-*experiment* scheduler hook: the `risks` runner puts
/// whole figures on the queue while each figure parallelizes internally over
/// its own share of the thread budget.
///
/// ```
/// let out = ldp_sim::par::par_queue(5, 3, |i| i * i);
/// assert_eq!(out, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_queue<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let next = &next;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return local;
                        }
                        local.push((i, f(i)));
                    }
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("worker thread panicked"));
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// A sensible default thread count for the current machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(100, 7, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let out = par_chunks(10, 3, |r| r.map(|i| i as u32).collect());
        assert_eq!(out, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn handles_edge_sizes() {
        assert_eq!(par_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, 4, |i| i), vec![0]);
        assert_eq!(par_map(5, 100, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_work_never_invokes_the_callback() {
        // The zero-jobs edge: fanning out over nothing must not call `f`
        // (whose body may index into data that does not exist) nor spawn.
        let out = par_chunks(0, 8, |_| -> Vec<usize> {
            panic!("callback must not run for n == 0")
        });
        assert!(out.is_empty());
        let out = par_queue(0, 8, |_| -> usize { panic!("no jobs, no calls") });
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = par_map(8, 1, |i| i + 1);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn par_queue_returns_in_index_order() {
        for workers in [1, 2, 5, 16] {
            let out = par_queue(23, workers, |i| i * 3);
            assert_eq!(out, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        }
        assert_eq!(par_queue(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn par_queue_drains_under_skewed_costs() {
        // One slow job must not starve the rest of the queue: with static
        // chunking a 2-worker split would serialize ~half the jobs behind
        // the slow one; the queue hands them to the free worker instead.
        let out = par_queue(8, 2, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
