//! Longitudinal privacy-loss accounting across surveys (§6 of the paper).
//!
//! Under standard sequential composition, every fresh ε-LDP report adds ε to
//! a user's cumulative loss; memoized re-reports add nothing (the same
//! randomized value is re-sent, post-processing of the first report). The
//! paper's §6 observation — "the overall privacy loss is excessive when using
//! high values for ε" — is exactly what these helpers quantify.

use crate::campaign::SamplingSetting;

/// Worst-case cumulative privacy loss of one user after `n_surveys`
/// collections at per-report budget `epsilon`:
///
/// * uniform metric (fresh attribute every survey): `n_surveys · ε`, capped
///   at `d · ε` once every attribute has been reported;
/// * non-uniform metric (with replacement + memoization): at most
///   `min(n_surveys, d) · ε`, since repeats are free.
pub fn worst_case_loss(epsilon: f64, d: usize, n_surveys: usize, setting: SamplingSetting) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(d >= 1, "need at least one attribute");
    match setting {
        SamplingSetting::Uniform => n_surveys.min(d) as f64 * epsilon,
        SamplingSetting::NonUniform => n_surveys.min(d) as f64 * epsilon,
    }
}

/// *Expected* cumulative loss under the non-uniform metric: survey `t`
/// (1-based) samples a fresh attribute with probability `(d − E_{t−1})/d`
/// where `E_{t−1}` is the expected number of distinct attributes so far —
/// the coupon-collector expectation `E_t = d (1 − (1 − 1/d)^t)`, so
///
/// `E[loss] = ε · d · (1 − (1 − 1/d)^{n_surveys})`.
///
/// Under the uniform metric every survey is fresh: `E[loss] = ε · min(s, d)`.
pub fn expected_loss(epsilon: f64, d: usize, n_surveys: usize, setting: SamplingSetting) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(d >= 1, "need at least one attribute");
    match setting {
        SamplingSetting::Uniform => n_surveys.min(d) as f64 * epsilon,
        SamplingSetting::NonUniform => {
            let d = d as f64;
            epsilon * d * (1.0 - (1.0 - 1.0 / d).powi(n_surveys as i32))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_loss_is_linear_until_d() {
        assert_eq!(worst_case_loss(2.0, 10, 3, SamplingSetting::Uniform), 6.0);
        assert_eq!(worst_case_loss(2.0, 10, 15, SamplingSetting::Uniform), 20.0);
    }

    #[test]
    fn nonuniform_expected_loss_is_strictly_below_uniform() {
        for s in 2..=10usize {
            let uni = expected_loss(1.0, 10, s, SamplingSetting::Uniform);
            let non = expected_loss(1.0, 10, s, SamplingSetting::NonUniform);
            assert!(
                non < uni,
                "s={s}: non-uniform {non} must be below uniform {uni}"
            );
        }
    }

    #[test]
    fn nonuniform_expected_loss_follows_coupon_collector() {
        // d = 3, 3 surveys: E[distinct] = 3(1 − (2/3)³) = 3·19/27 = 19/9.
        let e = expected_loss(1.0, 3, 3, SamplingSetting::NonUniform);
        assert!((e - 19.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn expected_loss_saturates_at_d_epsilon() {
        let e = expected_loss(2.0, 5, 500, SamplingSetting::NonUniform);
        assert!(e < 10.0 + 1e-9);
        assert!(e > 9.9, "should approach d·eps: {e}");
    }

    #[test]
    fn industrial_epsilons_compose_excessively() {
        // The paper's §6 warning: 5 surveys at ε = 8 is a loss of 40.
        let loss = worst_case_loss(8.0, 10, 5, SamplingSetting::Uniform);
        assert!(loss >= 40.0);
    }
}
