//! Seeded synthetic traffic: *who* reports *when*.
//!
//! A [`TrafficGenerator`] turns a population of `n` users into a
//! deterministic sequence of arrival **waves** (one wave ≈ one scheduling
//! tick's worth of reports) under one of four [`TrafficShape`]s:
//!
//! * [`TrafficShape::Steady`] — a constant arrival rate;
//! * [`TrafficShape::Burst`] — long quiet trickles punctuated by large
//!   seeded bursts;
//! * [`TrafficShape::Ramp`] — a diurnal-ish ramp from near-idle to several
//!   times the base rate;
//! * [`TrafficShape::Churn`] — user dropout: a seeded fraction of each wave
//!   abandons its scheduled slot and re-arrives in a later wave, so arrival
//!   order is *not* the uid order.
//!
//! Every user reports **exactly once** across the whole schedule, whatever
//! the shape — so a server that drains the full schedule holds exactly the
//! same report multiset as a batch pass, which is what makes the
//! serve-vs-batch equivalence tests possible. Shapes other than `Churn`
//! additionally preserve uid order ([`TrafficGenerator::uid_ordered`]), so
//! any mid-schedule prefix of waves covers exactly the users `0..m`.
//!
//! **Design decision — churn is delayed re-arrival, not partial reports.**
//! Churning users abandon their scheduled slot but later deliver their
//! *complete* report; they never send a truncated tuple. Partial tuples
//! would change what the estimators see and break the bit-identity contract
//! between the drained server and the batch pipeline that the whole
//! determinism suite (and the per-run manifests) rests on. Users who
//! *permanently* drop out simply never appear on the wire — the server
//! estimates over whoever actually reported, which needs no generator
//! support (drive [`LdpServer`](ldp_server::LdpServer) with any subset;
//! covered by `tests/server_equivalence.rs`). Within-report partial
//! disclosure is a solution-layer concern: SMP reports already carry a
//! single attribute, and the aggregator's per-attribute `n_j` bookkeeping
//! handles it.

use ldp_protocols::hash::mix3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt separating the traffic-schedule rng stream from every per-user
/// sanitization stream.
const TRAFFIC_SALT: u64 = 0x7AFF_1C00;

/// Salt folding the collection round into the schedule seed for
/// longitudinal campaigns. Round 0 deliberately bypasses it so a
/// single-round schedule is bit-identical to [`TrafficGenerator::waves`].
const ROUND_SALT: u64 = 0x0E9_0C45;

/// The arrival patterns the generator can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficShape {
    /// Constant rate: every wave carries `wave` users.
    Steady,
    /// Quiet trickle with seeded bursts of several waves' worth at once.
    Burst,
    /// Arrival rate ramps from `wave / 4` up to `4 · wave` and back down —
    /// one "day" of diurnal traffic.
    Ramp,
    /// Dropout/churn: each scheduled user abandons their slot with the
    /// configured probability and re-arrives in a later wave.
    Churn,
}

impl TrafficShape {
    /// Every shape, in documentation order.
    pub const ALL: [TrafficShape; 4] = [
        TrafficShape::Steady,
        TrafficShape::Burst,
        TrafficShape::Ramp,
        TrafficShape::Churn,
    ];

    /// Stable identifier used by the `risks serve` CLI.
    pub fn id(self) -> &'static str {
        match self {
            TrafficShape::Steady => "steady",
            TrafficShape::Burst => "burst",
            TrafficShape::Ramp => "ramp",
            TrafficShape::Churn => "churn",
        }
    }

    /// Looks a shape up by its identifier.
    pub fn from_id(id: &str) -> Option<TrafficShape> {
        TrafficShape::ALL.into_iter().find(|s| s.id() == id)
    }
}

impl std::fmt::Display for TrafficShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Deterministic arrival-schedule generator over the users `0..n`.
///
/// ```
/// use ldp_sim::traffic::{TrafficGenerator, TrafficShape};
///
/// let traffic = TrafficGenerator::new(TrafficShape::Burst, 10_000).seed(7);
/// let waves: Vec<Vec<u64>> = traffic.waves().collect();
/// let arrived: usize = waves.iter().map(Vec::len).sum();
/// assert_eq!(arrived, 10_000); // every user reports exactly once
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    shape: TrafficShape,
    n: usize,
    seed: u64,
    wave: usize,
    churn: f64,
}

impl TrafficGenerator {
    /// A generator for `n` users with default wave size (1024), seed 0 and
    /// 30 % churn (only [`TrafficShape::Churn`] uses the churn rate).
    pub fn new(shape: TrafficShape, n: usize) -> Self {
        TrafficGenerator {
            shape,
            n,
            seed: 0,
            wave: 1024,
            churn: 0.3,
        }
    }

    /// Sets the schedule seed (burst sizes, churn decisions).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the base wave size (clamped to ≥ 1).
    pub fn wave(mut self, wave: usize) -> Self {
        self.wave = wave.max(1);
        self
    }

    /// Sets the dropout probability for [`TrafficShape::Churn`] (clamped to
    /// `[0, 0.95]` so the schedule always makes progress).
    pub fn churn(mut self, churn: f64) -> Self {
        self.churn = churn.clamp(0.0, 0.95);
        self
    }

    /// The shape of this schedule.
    pub fn shape(&self) -> TrafficShape {
        self.shape
    }

    /// The population size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether concatenating the waves yields the uids in increasing order —
    /// true for every shape except [`TrafficShape::Churn`]. When it holds,
    /// the first `m` arrivals are exactly the users `0..m`, so mid-stream
    /// snapshots can be checked against a batch run over that prefix.
    pub fn uid_ordered(&self) -> bool {
        self.shape != TrafficShape::Churn
    }

    /// The wave iterator. Memory stays `O(wave size)` — waves are produced
    /// lazily, so 10M-user schedules never materialize a 10M-entry list
    /// (except transiently for churn's pending set, bounded by the churn
    /// fraction of the population).
    pub fn waves(&self) -> Waves {
        self.waves_for_round(0)
    }

    /// The wave iterator for collection round `round` of a longitudinal
    /// campaign. Round 0 is bit-identical to [`TrafficGenerator::waves`]
    /// (single-round callers and the serve-vs-batch equivalence suite keep
    /// their schedules unchanged); later rounds fold the round index into
    /// the schedule seed, so burst sizes and churn decisions re-randomize
    /// per round instead of replaying round 0's arrival pattern.
    ///
    /// Every round's iterator drains its **own** pending churn set before
    /// finishing — a user churned out of round `r` re-arrives in round `r`,
    /// never leaks into round `r + 1`, so every `(uid, round)` pair is
    /// delivered exactly once (property-tested below).
    pub fn waves_for_round(&self, round: u64) -> Waves {
        let seed = if round == 0 {
            self.seed
        } else {
            mix3(self.seed, round, ROUND_SALT)
        };
        Waves {
            traffic: self.clone(),
            rng: StdRng::seed_from_u64(mix3(seed, self.n as u64, TRAFFIC_SALT)),
            next_uid: 0,
            tick: 0,
            pending: Vec::new(),
        }
    }
}

/// Lazy iterator over arrival waves; see [`TrafficGenerator::waves`].
#[derive(Debug)]
pub struct Waves {
    traffic: TrafficGenerator,
    rng: StdRng,
    next_uid: u64,
    tick: u64,
    /// Users who churned out of their scheduled wave and will re-arrive.
    pending: Vec<u64>,
}

impl Waves {
    /// How many fresh uids this tick admits, per the shape.
    fn wave_size(&mut self) -> usize {
        let w = self.traffic.wave;
        match self.traffic.shape {
            TrafficShape::Steady | TrafficShape::Churn => w,
            TrafficShape::Burst => {
                // Three quiet ticks of a trickle, then one seeded burst.
                if self.tick % 4 == 3 {
                    3 * w + self.rng.random_range(0..=w)
                } else {
                    (w / 8).max(1)
                }
            }
            TrafficShape::Ramp => {
                // One triangular "day" over 16 ticks: w/4 → 4w → w/4; later
                // days repeat.
                let phase = self.tick % 16;
                let up = if phase < 8 { phase } else { 15 - phase };
                (w / 4 + (up as usize * w) / 2).max(1)
            }
        }
    }
}

impl Iterator for Waves {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        let n = self.traffic.n as u64;
        // A churn tick can lose its whole cohort to the pending set; loop so
        // callers never see phantom empty waves mid-schedule.
        loop {
            if self.next_uid >= n && self.pending.is_empty() {
                return None;
            }
            let size = self.wave_size();
            let mut wave = Vec::with_capacity(size);
            if self.traffic.shape == TrafficShape::Churn {
                // Returning users re-arrive ahead of this tick's fresh
                // cohort, every fourth tick and in the tail drain.
                let drain_tail = self.next_uid >= n;
                if self.tick % 4 == 1 || drain_tail {
                    let take = self.pending.len().min(size);
                    wave.extend(self.pending.drain(..take));
                }
                while wave.len() < size && self.next_uid < n {
                    let uid = self.next_uid;
                    self.next_uid += 1;
                    if self.rng.random::<f64>() < self.traffic.churn {
                        self.pending.push(uid);
                    } else {
                        wave.push(uid);
                    }
                }
            } else {
                let end = (self.next_uid + size as u64).min(n);
                wave.extend(self.next_uid..end);
                self.next_uid = end;
            }
            self.tick += 1;
            if !wave.is_empty() {
                return Some(wave);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flatten(traffic: &TrafficGenerator) -> Vec<u64> {
        traffic.waves().flatten().collect()
    }

    #[test]
    fn every_shape_schedules_each_user_exactly_once() {
        for shape in TrafficShape::ALL {
            for n in [0usize, 1, 7, 1000, 5000] {
                let traffic = TrafficGenerator::new(shape, n).seed(9).wave(64);
                let mut uids = flatten(&traffic);
                uids.sort_unstable();
                assert_eq!(
                    uids,
                    (0..n as u64).collect::<Vec<_>>(),
                    "{shape} n={n}: schedule must cover the population exactly once"
                );
            }
        }
    }

    #[test]
    fn ordered_shapes_arrive_in_uid_order() {
        for shape in [
            TrafficShape::Steady,
            TrafficShape::Burst,
            TrafficShape::Ramp,
        ] {
            let traffic = TrafficGenerator::new(shape, 3000).seed(3).wave(100);
            assert!(traffic.uid_ordered());
            let uids = flatten(&traffic);
            assert_eq!(uids, (0..3000u64).collect::<Vec<_>>(), "{shape}");
        }
    }

    #[test]
    fn churn_permutes_but_still_covers() {
        let traffic = TrafficGenerator::new(TrafficShape::Churn, 4000)
            .seed(5)
            .wave(128)
            .churn(0.4);
        assert!(!traffic.uid_ordered());
        let uids = flatten(&traffic);
        assert_ne!(
            uids,
            (0..4000u64).collect::<Vec<_>>(),
            "churn should reorder arrivals"
        );
        let mut sorted = uids;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..4000u64).collect::<Vec<_>>());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for shape in TrafficShape::ALL {
            let a = flatten(&TrafficGenerator::new(shape, 2000).seed(11).wave(64));
            let b = flatten(&TrafficGenerator::new(shape, 2000).seed(11).wave(64));
            assert_eq!(a, b, "{shape}: same seed, same schedule");
        }
        let c = flatten(
            &TrafficGenerator::new(TrafficShape::Churn, 2000)
                .seed(12)
                .wave(64),
        );
        let d = flatten(
            &TrafficGenerator::new(TrafficShape::Churn, 2000)
                .seed(13)
                .wave(64),
        );
        assert_ne!(c, d, "different seeds should reorder churn");
    }

    #[test]
    fn burst_waves_vary_in_size_and_ramp_ramps() {
        let burst_sizes: Vec<usize> = TrafficGenerator::new(TrafficShape::Burst, 20_000)
            .seed(2)
            .wave(256)
            .waves()
            .map(|w| w.len())
            .collect();
        let max = *burst_sizes.iter().max().unwrap();
        let min = *burst_sizes.iter().min().unwrap();
        assert!(
            max >= 8 * min.max(1),
            "burst schedule too flat: min {min}, max {max}"
        );

        let ramp_sizes: Vec<usize> = TrafficGenerator::new(TrafficShape::Ramp, 20_000)
            .seed(2)
            .wave(256)
            .waves()
            .map(|w| w.len())
            .collect();
        assert!(ramp_sizes[0] < ramp_sizes[7], "ramp should ramp up");
    }

    #[test]
    fn empty_population_yields_no_waves() {
        for shape in TrafficShape::ALL {
            assert_eq!(
                TrafficGenerator::new(shape, 0).waves().count(),
                0,
                "{shape}: zero users, zero waves"
            );
        }
    }

    #[test]
    fn round_zero_schedule_is_bit_identical_to_waves() {
        for shape in TrafficShape::ALL {
            let traffic = TrafficGenerator::new(shape, 3000).seed(17).wave(64);
            let base: Vec<Vec<u64>> = traffic.waves().collect();
            let round0: Vec<Vec<u64>> = traffic.waves_for_round(0).collect();
            assert_eq!(base, round0, "{shape}: round 0 must replay waves()");
        }
    }

    #[test]
    fn every_uid_round_pair_is_delivered_exactly_once() {
        // The churn-containment property the longitudinal pipeline rests on:
        // a user churned out of round r re-arrives *in* round r (the round's
        // own tail drain), so concatenating R independent round schedules
        // delivers every (uid, round) pair exactly once — no double reports,
        // no leakage into a later round.
        for shape in TrafficShape::ALL {
            for n in [1usize, 7, 1000, 4096] {
                let traffic = TrafficGenerator::new(shape, n).seed(29).wave(64).churn(0.6);
                let mut seen = std::collections::HashMap::new();
                for round in 0..4u64 {
                    for wave in traffic.waves_for_round(round) {
                        for uid in wave {
                            *seen.entry((uid, round)).or_insert(0u32) += 1;
                        }
                    }
                }
                assert_eq!(
                    seen.len(),
                    n * 4,
                    "{shape} n={n}: every (uid, round) pair must arrive"
                );
                assert!(
                    seen.values().all(|&c| c == 1),
                    "{shape} n={n}: some (uid, round) pair was delivered twice"
                );
            }
        }
    }

    #[test]
    fn later_rounds_rerandomize_the_churn_order() {
        let traffic = TrafficGenerator::new(TrafficShape::Churn, 4000)
            .seed(5)
            .wave(128)
            .churn(0.4);
        let r0: Vec<u64> = traffic.waves_for_round(0).flatten().collect();
        let r1: Vec<u64> = traffic.waves_for_round(1).flatten().collect();
        assert_ne!(r0, r1, "round 1 must not replay round 0's churn pattern");
        let mut sorted = r1;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..4000u64).collect::<Vec<_>>());
    }

    #[test]
    fn shape_ids_roundtrip() {
        for shape in TrafficShape::ALL {
            assert_eq!(TrafficShape::from_id(shape.id()), Some(shape));
        }
        assert_eq!(TrafficShape::from_id("tsunami"), None);
    }
}
