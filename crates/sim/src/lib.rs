//! # ldp-sim
//!
//! Survey-campaign simulation engine for the paper's §3.1 system model: a
//! server repeatedly surveys the same population, each survey covering a
//! random subset of at least `d/2` attributes, while an adversary observes
//! every sanitized message and builds per-user profiles.
//!
//! * [`survey::SurveyPlan`] — the sequence of per-survey attribute subsets.
//! * [`campaign::SmpCampaign`] — the SMP data-collection + profiling pipeline
//!   under ε-LDP or α-PIE privacy, uniform or non-uniform privacy metrics
//!   (with memoization).
//! * [`rsfd_campaign`] — the Fig. 4 pipeline: RS+FD collection where the
//!   adversary must first *infer* the sampled attribute with the §3.3
//!   classifier before profiling.
//! * [`pipeline::CollectionPipeline`] — the streaming frequency-estimation
//!   pipeline: dataset → solution → sharded aggregators → merged estimates,
//!   memory-flat in the population size.
//! * [`attack_pipeline::AttackPipeline`] — the adversary mirror: dataset →
//!   collection run → adversary fit (profiles / classifier / index) →
//!   sharded, per-target-seeded ASR evaluation, bit-identical for every
//!   thread count.
//! * [`traffic::TrafficGenerator`] — seeded arrival schedules (steady,
//!   burst, diurnal-ish ramp, churn) that drive the streamed
//!   [`CollectionPipeline::serve`] mode through the `ldp_server` ingestion
//!   service, bit-identical to the batch pass at equal seed.
//! * [`net_client::NetClient`] — the producer side of the ingestion wire:
//!   a blocking TCP client streaming checksummed, sequence-numbered
//!   `CompactBatch` frames to a remote `ldp_server::WireServer`, with a
//!   bounded unacked-replay ring, reconnect-and-resume, and configurable
//!   read deadlines; driven from the traffic schedule by
//!   [`CollectionPipeline::serve_remote`] for real multi-process ingestion.
//! * [`fault::FaultPlan`] — deterministic, seeded transport-fault schedules
//!   (drop / delay / reset / truncate / duplicate) the client injects on
//!   its own sends, so crash-recovery paths are exactly reproducible.
//! * [`par`] — deterministic scoped-thread parallel helpers used by the heavy
//!   sweeps.

#![deny(missing_docs)]

pub mod attack_pipeline;
pub mod campaign;
pub mod composition;
pub mod fault;
pub mod net_client;
pub mod par;
pub mod pipeline;
pub mod rsfd_campaign;
pub mod survey;
pub mod traffic;

pub use attack_pipeline::{AttackPipeline, AttackRun};
pub use campaign::{PrivacyModel, SamplingSetting, SmpCampaign};
pub use fault::{FaultKind, FaultPlan};
pub use net_client::{ClientConfig, NetClient};
pub use pipeline::{
    user_rng, user_rng_round, BudgetPolicy, CollectionPipeline, CollectionRun, LongitudinalRun,
};
pub use rsfd_campaign::{run_rsfd_campaign, RsFdCampaignConfig};
pub use survey::SurveyPlan;
pub use traffic::{TrafficGenerator, TrafficShape};

use ldp_core::profiling::Profile;
use ldp_core::reident::ReidentAttack;

/// Thread-parallel RID-ACC (%) evaluation: profiles are matched against the
/// background index in contiguous user chunks, each thread reusing one
/// scratch buffer. Deterministic for a fixed `seed` regardless of `threads`.
///
/// Convenience over the [`AttackPipeline`] machinery (identical rng
/// streams); prefer the pipeline for end-to-end runs.
pub fn rid_acc_parallel(
    attack: &ReidentAttack,
    profiles: &[Profile],
    top_k: usize,
    seed: u64,
    threads: usize,
) -> f64 {
    rid_acc_multi(attack, profiles, &[top_k], seed, threads)[0]
}

/// [`rid_acc_parallel`] for several top-k values sharing one matching pass.
/// Returns one RID-ACC (%) per entry of `top_ks`.
pub fn rid_acc_multi(
    attack: &ReidentAttack,
    profiles: &[Profile],
    top_ks: &[usize],
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    attack_pipeline::rid_acc_sharded(attack, profiles, top_ks, seed, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_datasets::corpora::adult_like;

    #[test]
    fn parallel_rid_acc_matches_serial_distribution() {
        let ds = adult_like(400, 3);
        let all: Vec<usize> = (0..ds.d()).collect();
        let attack = ReidentAttack::build(&ds, &all);
        // Perfect profiles: RID-ACC should be ≈ the uniqueness fraction or
        // higher (ties only among identical records).
        let profiles: Vec<Profile> = (0..ds.n())
            .map(|i| {
                let mut p = Profile::new();
                for j in 0..ds.d() {
                    p.observe(j, ds.value(i, j));
                }
                p
            })
            .collect();
        let acc = rid_acc_parallel(&attack, &profiles, 1, 7, 4);
        let uniq = 100.0 * ds.uniqueness_fraction(&all);
        assert!(acc >= uniq - 1.0, "acc {acc} vs uniqueness {uniq}");
        // Deterministic across thread counts.
        let acc2 = rid_acc_parallel(&attack, &profiles, 1, 7, 1);
        assert!((acc - acc2).abs() < 1e-9);
    }
}
