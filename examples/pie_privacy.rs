//! The α-PIE relaxed privacy model (Appendix C): how the per-attribute
//! decision rule ("pass small domains through, randomize the rest") changes
//! re-identification exposure compared to standard ε-LDP.
//!
//! ```sh
//! cargo run --release --example pie_privacy
//! ```

use ldp_core::pie::{self, PieDecision};
use ldp_core::reident::ReidentAttack;
use ldp_datasets::corpora::adult_like;
use ldp_protocols::ProtocolKind;
use ldp_sim::{rid_acc_multi, PrivacyModel, SamplingSetting, SmpCampaign, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 8_000;
    let dataset = adult_like(n, 13);
    let ks = dataset.schema().cardinalities();

    println!("Per-attribute PIE decisions over the Adult schema (n = {n}):\n");
    println!(
        "{:<16} {:>3} {:>24}",
        "attribute", "k", "beta=0.9 / beta=0.6"
    );
    for (attr, &k) in dataset.schema().attributes().iter().zip(&ks) {
        let show = |beta: f64| match pie::decide(beta, n, k) {
            PieDecision::PassThrough => "clear".to_string(),
            PieDecision::Randomize { epsilon } => format!("eps={epsilon:.2}"),
        };
        println!(
            "{:<16} {:>3} {:>11} / {:<10}",
            attr.name,
            k,
            show(0.9),
            show(0.6)
        );
    }

    // Compare OUE under eps-LDP vs alpha-PIE at a comparable operating point.
    let mut rng = StdRng::seed_from_u64(3);
    let plan = SurveyPlan::generate(dataset.d(), 5, &mut rng);
    let all: Vec<usize> = (0..dataset.d()).collect();
    let attack = ReidentAttack::build(&dataset, &all);

    println!(
        "\n{:<26} {:>9} {:>9}",
        "privacy model (OUE)", "top-1 %", "top-10 %"
    );
    for (label, model) in [
        (
            "eps-LDP, eps = 1".to_string(),
            PrivacyModel::Ldp { epsilon: 1.0 },
        ),
        (
            "alpha-PIE, beta = 0.9".to_string(),
            PrivacyModel::Pie { beta: 0.9 },
        ),
        (
            "alpha-PIE, beta = 0.6".to_string(),
            PrivacyModel::Pie { beta: 0.6 },
        ),
    ] {
        let campaign = SmpCampaign::new(
            ProtocolKind::Oue,
            &ks,
            &model,
            dataset.n(),
            SamplingSetting::Uniform,
        )
        .expect("campaign");
        let snaps = campaign.run(&dataset, &plan, 77, 2);
        let accs = rid_acc_multi(&attack, &snaps[4], &[1, 10], 5, 2);
        println!("{:<26} {:>9.2} {:>9.2}", label, accs[0], accs[1]);
    }

    println!("\nPIE sends small-domain attributes in the clear, so even utility-");
    println!("friendly OUE becomes re-identifiable — the paper's Appendix C warning.");
}
