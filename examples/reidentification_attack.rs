//! End-to-end SMP re-identification attack (the paper's §3.2 / Fig. 2
//! pipeline) on an Adult-like population.
//!
//! Five surveys are run with the SMP solution; an adversary observing
//! ⟨sampled attribute, ε-LDP report⟩ profiles every user via plausible
//! deniability and matches the profiles against public background knowledge.
//!
//! ```sh
//! cargo run --release --example reidentification_attack
//! ```

use ldp_core::reident::ReidentAttack;
use ldp_datasets::corpora::adult_like;
use ldp_protocols::ProtocolKind;
use ldp_sim::{rid_acc_multi, PrivacyModel, SamplingSetting, SmpCampaign, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 8_000;
    let dataset = adult_like(n, 11);
    let ks = dataset.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(5);
    let plan = SurveyPlan::generate(dataset.d(), 5, &mut rng);

    // FK-RI: the attacker's background knowledge is the full population.
    let all_attrs: Vec<usize> = (0..dataset.d()).collect();
    let attack = ReidentAttack::build(&dataset, &all_attrs);

    println!("Adult-like population: n = {n}, d = {}", dataset.d());
    println!(
        "full-profile uniqueness: {:.1}% of users are unique\n",
        100.0 * dataset.uniqueness_fraction(&all_attrs)
    );
    println!(
        "{:<9} {:>4} {:>9} {:>9} {:>10}",
        "protocol", "eps", "top-1 %", "top-10 %", "baseline-1"
    );

    for kind in [ProtocolKind::Grr, ProtocolKind::Oue] {
        for epsilon in [1.0, 4.0, 8.0] {
            let campaign = SmpCampaign::new(
                kind,
                &ks,
                &PrivacyModel::Ldp { epsilon },
                dataset.n(),
                SamplingSetting::Uniform,
            )
            .expect("campaign");
            let snapshots = campaign.run(&dataset, &plan, 1234, 2);
            // Profiles after all five surveys.
            let accs = rid_acc_multi(&attack, &snapshots[4], &[1, 10], 99, 2);
            println!(
                "{:<9} {:>4.0} {:>9.2} {:>9.2} {:>10.3}",
                kind.name(),
                epsilon,
                accs[0],
                accs[1],
                attack.baseline(1)
            );
        }
    }

    println!("\nGRR's weak plausible deniability lets the attacker re-identify a");
    println!("substantial share of users at industrial epsilon; OUE resists far");
    println!("better — exactly the paper's protocol-selection guidance.");
}
