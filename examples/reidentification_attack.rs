//! End-to-end SMP re-identification attack (the paper's §3.2 / Fig. 2
//! pipeline) on an Adult-like population, driven through the unified
//! adversary API: `AttackKind` → `AttackPipeline` → sharded RID-ACC.
//!
//! Five surveys are run with the SMP solution; an adversary observing
//! ⟨sampled attribute, ε-LDP report⟩ profiles every user via plausible
//! deniability and matches the profiles against public background knowledge.
//!
//! ```sh
//! cargo run --release --example reidentification_attack
//! ```

use ldp_core::attacks::{AttackKind, ReidentConfig};
use ldp_core::solutions::SolutionKind;
use ldp_datasets::corpora::adult_like;
use ldp_protocols::ProtocolKind;
use ldp_sim::{
    AttackPipeline, CollectionPipeline, PrivacyModel, SamplingSetting, SmpCampaign, SurveyPlan,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 8_000;
    let dataset = adult_like(n, 11);
    let ks = dataset.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(5);
    let plan = SurveyPlan::generate(dataset.d(), 5, &mut rng);

    // One sharded, per-target-seeded evaluator for every sweep point; its
    // default config is FK-RI (full background knowledge) at top-1/top-10.
    let evaluator = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig::default()))
        .expect("attack kind")
        .seed(99)
        .threads(2);
    let attack = evaluator.reident_index(&dataset);
    let all_attrs: Vec<usize> = (0..dataset.d()).collect();

    println!("Adult-like population: n = {n}, d = {}", dataset.d());
    println!(
        "full-profile uniqueness: {:.1}% of users are unique\n",
        100.0 * dataset.uniqueness_fraction(&all_attrs)
    );
    println!(
        "{:<9} {:>4} {:>9} {:>9} {:>10}",
        "protocol", "eps", "top-1 %", "top-10 %", "baseline-1"
    );

    for kind in [ProtocolKind::Grr, ProtocolKind::Oue] {
        for epsilon in [1.0, 4.0, 8.0] {
            let campaign = SmpCampaign::new(
                kind,
                &ks,
                &PrivacyModel::Ldp { epsilon },
                dataset.n(),
                SamplingSetting::Uniform,
            )
            .expect("campaign");
            let snapshots = campaign.run(&dataset, &plan, 1234, 2);
            // Profiles after all five surveys, matched in parallel shards.
            let accs = evaluator.rid_acc(&attack, &snapshots[4]);
            println!(
                "{:<9} {:>4.0} {:>9.2} {:>9.2} {:>10.3}",
                kind.name(),
                epsilon,
                accs[0],
                accs[1],
                attack.baseline(1)
            );
        }
    }

    // The same adversary, end to end in one call: a single SMP collection
    // round streamed through CollectionPipeline, observed, profiled and
    // matched — AttackPipeline::run chains all of it.
    let collection = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, 8.0)
        .expect("collection")
        .seed(42)
        .threads(2);
    let run = evaluator.run(&collection, &dataset);
    let outcome = run.outcome.reident().expect("reident outcome");
    println!(
        "\nsingle GRR collection round at eps = 8: top-10 RID-ACC {:.2}% \
         (baseline {:.3}%)",
        outcome.acc_at(10).unwrap(),
        outcome.baseline[1]
    );

    println!("\nGRR's weak plausible deniability lets the attacker re-identify a");
    println!("substantial share of users at industrial epsilon; OUE resists far");
    println!("better — exactly the paper's protocol-selection guidance.");
}
