//! Quickstart: single-attribute frequency estimation with all five LDP
//! protocols.
//!
//! A population of users holds one categorical value each; every user
//! sanitizes it locally and the untrusted server reconstructs the value
//! histogram from the noisy reports. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ldp_protocols::{Aggregator, FrequencyOracle, ProtocolKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    let k = 8; // attribute domain size
    let n = 50_000; // population
    let epsilon = 1.0;

    // A skewed ground-truth distribution the server wants to estimate.
    let truth = [0.35, 0.22, 0.15, 0.10, 0.08, 0.05, 0.03, 0.02];
    let values: Vec<u32> = (0..n)
        .map(|_| {
            let u: f64 = rng.random();
            let mut acc = 0.0;
            let mut v = 0u32;
            for (i, &p) in truth.iter().enumerate() {
                acc += p;
                if u < acc {
                    v = i as u32;
                    break;
                }
            }
            v
        })
        .collect();

    println!("n = {n}, k = {k}, epsilon = {epsilon}");
    println!("{:<10} {:>10} {:>12}", "protocol", "max |err|", "avg |err|");
    for kind in ProtocolKind::ALL {
        let oracle = kind.build(k, epsilon).expect("valid parameters");
        let mut agg = Aggregator::new(&oracle);
        for &v in &values {
            // Client side: one local randomization per user.
            agg.absorb(&oracle.randomize(v, &mut rng));
        }
        // Server side: the unbiased Eq. (2) estimator.
        let est = agg.estimate();
        let max_err = est
            .iter()
            .zip(&truth)
            .map(|(e, t)| (e - t).abs())
            .fold(0.0f64, f64::max);
        let avg_err = est
            .iter()
            .zip(&truth)
            .map(|(e, t)| (e - t).abs())
            .sum::<f64>()
            / k as f64;
        println!("{:<10} {:>10.4} {:>12.4}", kind.name(), max_err, avg_err);
    }
    println!("\nAll five protocols recover the histogram; their variances differ.");
    println!("OUE/OLH have the lowest worst-case error at this epsilon, as in the paper.");
}
