//! A mobile-app telemetry scenario: the server wants histograms of d = 5
//! user attributes under one ε budget, comparing the three collection
//! solutions of the paper (SPL, SMP, RS+FD) plus the RS+RFD countermeasure.
//!
//! This is the streaming-first API in one screen: every solution is chosen
//! at runtime through [`SolutionKind`], and [`CollectionPipeline`] wires
//! dataset → solution → sharded aggregators → merged estimates without ever
//! buffering a report — server memory stays `O(threads · Σ_j k_j)` whether
//! the population is 30 thousand or 30 million users.
//!
//! ```sh
//! cargo run --release --example multidim_survey
//! ```

use ldp_core::metrics::mse_avg;
use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol, SolutionKind};
use ldp_datasets::priors::correct_priors;
use ldp_datasets::{Dataset, GeneratorConfig, LatentClassGenerator, Schema};
use ldp_protocols::ProtocolKind;
use ldp_sim::CollectionPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn population(n: usize, seed: u64) -> Dataset {
    // Five app-usage attributes: session bucket, favourite widget, theme,
    // notification level, subscription tier.
    let schema = Schema::new(vec![
        ldp_datasets::Attribute::new("session-bucket", 12),
        ldp_datasets::Attribute::new("widget", 8),
        ldp_datasets::Attribute::new("theme", 3),
        ldp_datasets::Attribute::new("notifications", 4),
        ldp_datasets::Attribute::new("tier", 3),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    LatentClassGenerator::new(
        schema,
        GeneratorConfig {
            n,
            clusters: 6,
            skew: 1.6,
            uniform_mix: 0.1,
            cluster_skew: 0.5,
        },
        &mut rng,
    )
    .generate(&mut rng)
}

fn main() {
    let n = 30_000;
    let epsilon = 1.5;
    let ds = population(n, 7);
    let ks = ds.schema().cardinalities();
    let truth = ds.marginals();

    println!("d = {}, n = {n}, epsilon = {epsilon}\n", ds.d());
    println!("{:<28} {:>12}", "solution", "MSE_avg");

    // SPL splits the budget (the paper's high-error baseline), SMP samples
    // one attribute but discloses which, RS+FD hides it behind uniform
    // fakes. One construction path, one streaming pipeline for all three.
    for kind in [
        SolutionKind::Spl(ProtocolKind::Grr),
        SolutionKind::Smp(ProtocolKind::Grr),
        SolutionKind::RsFd(RsFdProtocol::Grr),
    ] {
        let run = CollectionPipeline::from_kind(kind, &ks, epsilon)
            .expect("valid configuration")
            .seed(99)
            .run(&ds);
        println!(
            "{:<28} {:>12.6}",
            kind.name(),
            mse_avg(&truth, &run.estimates)
        );
    }

    // RS+RFD: fakes follow last year's (noisy) statistics — better on both
    // axes, per the paper's §5. Priors enter through build_with_priors.
    let mut rng = StdRng::seed_from_u64(99);
    let priors = correct_priors(&ds, 0.1, &mut rng);
    let rsrfd = SolutionKind::RsRfd(RsRfdProtocol::Grr)
        .build_with_priors(&ks, epsilon, priors)
        .expect("valid priors");
    let run = CollectionPipeline::new(rsrfd).seed(99).run(&ds);
    println!(
        "{:<28} {:>12.6}",
        "RS+RFD[GRR] (correct prior)",
        mse_avg(&truth, &run.estimates)
    );

    println!("\nExpected ordering (paper): SPL worst; RS+RFD improves on RS+FD;");
    println!("SMP is most accurate but leaks which attribute each user reported.");
}
