//! A mobile-app telemetry scenario: the server wants histograms of d = 5
//! user attributes under one ε budget, comparing the three collection
//! solutions of the paper (SPL, SMP, RS+FD) plus the RS+RFD countermeasure.
//!
//! ```sh
//! cargo run --release --example multidim_survey
//! ```

use ldp_core::metrics::mse_avg;
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol, Smp, Spl};
use ldp_datasets::priors::correct_priors;
use ldp_datasets::{Dataset, GeneratorConfig, LatentClassGenerator, Schema};
use ldp_protocols::ProtocolKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn population(n: usize, seed: u64) -> Dataset {
    // Five app-usage attributes: session bucket, favourite widget, theme,
    // notification level, subscription tier.
    let schema = Schema::new(vec![
        ldp_datasets::Attribute::new("session-bucket", 12),
        ldp_datasets::Attribute::new("widget", 8),
        ldp_datasets::Attribute::new("theme", 3),
        ldp_datasets::Attribute::new("notifications", 4),
        ldp_datasets::Attribute::new("tier", 3),
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    LatentClassGenerator::new(
        schema,
        GeneratorConfig {
            n,
            clusters: 6,
            skew: 1.6,
            uniform_mix: 0.1,
            cluster_skew: 0.5,
        },
        &mut rng,
    )
    .generate(&mut rng)
}

fn main() {
    let n = 30_000;
    let epsilon = 1.5;
    let ds = population(n, 7);
    let ks = ds.schema().cardinalities();
    let truth = ds.marginals();
    let mut rng = StdRng::seed_from_u64(99);

    println!("d = {}, n = {n}, epsilon = {epsilon}\n", ds.d());
    println!("{:<28} {:>12}", "solution", "MSE_avg");

    // SPL: split the budget (the paper's high-error baseline).
    let spl = Spl::new(ProtocolKind::Grr, &ks, epsilon).expect("spl");
    let spl_reports: Vec<_> = ds.rows().map(|t| spl.report(t, &mut rng)).collect();
    println!("{:<28} {:>12.6}", "SPL[GRR] (eps/d)", mse_avg(&truth, &spl.estimate(&spl_reports)));

    // SMP: sample one attribute, full budget — discloses the sampled attribute.
    let smp = Smp::new(ProtocolKind::Grr, &ks, epsilon).expect("smp");
    let smp_reports: Vec<_> = ds.rows().map(|t| smp.report(t, &mut rng)).collect();
    println!("{:<28} {:>12.6}", "SMP[GRR]", mse_avg(&truth, &smp.estimate(&smp_reports)));

    // RS+FD: hide the sampled attribute behind uniform fakes.
    let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, epsilon).expect("rsfd");
    let rsfd_reports: Vec<_> = ds.rows().map(|t| rsfd.report(t, &mut rng)).collect();
    println!("{:<28} {:>12.6}", "RS+FD[GRR]", mse_avg(&truth, &rsfd.estimate(&rsfd_reports)));

    // RS+RFD: fakes follow last year's (noisy) statistics — better on both
    // axes, per the paper's §5.
    let priors = correct_priors(&ds, 0.1, &mut rng);
    let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, epsilon, priors).expect("rsrfd");
    let rsrfd_reports: Vec<_> = ds.rows().map(|t| rsrfd.report(t, &mut rng)).collect();
    println!(
        "{:<28} {:>12.6}",
        "RS+RFD[GRR] (correct prior)",
        mse_avg(&truth, &rsrfd.estimate(&rsrfd_reports))
    );

    println!("\nExpected ordering (paper): SPL worst; RS+RFD improves on RS+FD;");
    println!("SMP is most accurate but leaks which attribute each user reported.");
}
