//! The RS+RFD countermeasure (§5): realistic fake data simultaneously
//! improves utility and almost fully blocks the sampled-attribute inference
//! attack.
//!
//! ```sh
//! cargo run --release --example countermeasure
//! ```

use ldp_core::inference::{AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::metrics::mse_avg;
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol};
use ldp_datasets::corpora::{acs_employment_like, ACS_EMPLOYMENT_N};
use ldp_datasets::priors::{correct_priors_scaled, IncorrectPrior};
use ldp_gbdt::GbdtParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = acs_employment_like(2_500, 21);
    let ks = dataset.schema().cardinalities();
    let truth = dataset.marginals();
    let epsilon = 4.0;
    let mut rng = StdRng::seed_from_u64(31);
    let classifier = AttackClassifier::Gbdt(GbdtParams {
        rounds: 15,
        max_depth: 4,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    });
    let nk = AttackModel::NoKnowledge { synth_factor: 1.0 };

    println!(
        "n = {}, d = {}, eps = {epsilon} (attack baseline = {:.1}%)\n",
        dataset.n(),
        dataset.d(),
        100.0 / dataset.d() as f64
    );
    println!("{:<26} {:>10} {:>12}", "solution", "MSE_avg", "AIF-ACC %");

    // RS+FD with uniform fakes (the attack target).
    let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, epsilon).expect("rsfd");
    let reports: Vec<_> = dataset.rows().map(|t| rsfd.report(t, &mut rng)).collect();
    let mse = mse_avg(&truth, &rsfd.estimate(&reports));
    let attack = SampledAttributeAttack::evaluate(&rsfd, &reports, &nk, &classifier, &mut rng);
    println!(
        "{:<26} {:>10.6} {:>12.1}",
        "RS+FD[GRR]", mse, attack.aif_acc
    );

    // RS+RFD with "correct" Census-style priors.
    let priors = correct_priors_scaled(&dataset, 0.1, ACS_EMPLOYMENT_N, &mut rng);
    let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, epsilon, priors).expect("rsrfd");
    let reports: Vec<_> = dataset.rows().map(|t| rsrfd.report(t, &mut rng)).collect();
    let mse = mse_avg(&truth, &rsrfd.estimate(&reports));
    let attack = SampledAttributeAttack::evaluate(&rsrfd, &reports, &nk, &classifier, &mut rng);
    println!(
        "{:<26} {:>10.6} {:>12.1}",
        "RS+RFD[GRR] correct prior", mse, attack.aif_acc
    );

    // RS+RFD with deliberately wrong (Zipf) priors — still robust.
    let priors = IncorrectPrior::Zipf.generate_all(&ks, &mut rng);
    let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, epsilon, priors).expect("rsrfd");
    let reports: Vec<_> = dataset.rows().map(|t| rsrfd.report(t, &mut rng)).collect();
    let mse = mse_avg(&truth, &rsrfd.estimate(&reports));
    let attack = SampledAttributeAttack::evaluate(&rsrfd, &reports, &nk, &classifier, &mut rng);
    println!(
        "{:<26} {:>10.6} {:>12.1}",
        "RS+RFD[GRR] zipf prior", mse, attack.aif_acc
    );

    println!("\nWith correct priors RS+RFD lowers both the estimation error and the");
    println!("attacker's accuracy (to near-baseline); even wrong priors beat uniform");
    println!("fakes — the paper's closing recommendation.");
}
