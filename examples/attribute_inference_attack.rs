//! The §3.3 sampled-attribute inference attack against RS+FD, with no prior
//! knowledge (NK model): the attacker estimates frequencies from the LDP
//! reports themselves, fabricates labelled training data, and learns to spot
//! which attribute of each tuple carries the real report.
//!
//! ```sh
//! cargo run --release --example attribute_inference_attack
//! ```

use ldp_core::inference::{AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol};
use ldp_datasets::corpora::acs_employment_like;
use ldp_gbdt::GbdtParams;
use ldp_protocols::UeMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = acs_employment_like(2_000, 3);
    let ks = dataset.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(17);
    let classifier = AttackClassifier::Gbdt(GbdtParams {
        rounds: 15,
        max_depth: 4,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    });

    println!(
        "ACSEmployment-like population: n = {}, d = {} (baseline = {:.1}%)\n",
        dataset.n(),
        dataset.d(),
        100.0 / dataset.d() as f64
    );
    println!("{:<15} {:>4} {:>10}", "protocol", "eps", "AIF-ACC %");

    let protocols = [
        RsFdProtocol::Grr,
        RsFdProtocol::UeZ(UeMode::Symmetric),
        RsFdProtocol::UeZ(UeMode::Optimized),
        RsFdProtocol::UeR(UeMode::Optimized),
    ];
    for protocol in protocols {
        for epsilon in [2.0, 6.0, 10.0] {
            let solution = RsFd::new(protocol, &ks, epsilon).expect("rsfd");
            let observed: Vec<_> = dataset
                .rows()
                .map(|t| solution.report(t, &mut rng))
                .collect();
            let outcome = SampledAttributeAttack::evaluate(
                &solution,
                &observed,
                &AttackModel::NoKnowledge { synth_factor: 1.0 },
                &classifier,
                &mut rng,
            );
            println!(
                "{:<15} {:>4.0} {:>10.1}",
                protocol.name(),
                epsilon,
                outcome.aif_acc
            );
        }
    }

    println!("\nRS+FD[SUE-z] leaks the sampled attribute almost completely at high");
    println!("epsilon (fake zero-vectors are distinguishable); the paper recommends");
    println!("never deploying it. GRR/UE-r leak less but still beat the baseline.");
}
