//! The §3.3 sampled-attribute inference attack against RS+FD, with no prior
//! knowledge (NK model), driven through the unified adversary API: each
//! protocol × ε point is one `CollectionPipeline` (streamed collection) plus
//! one `AttackPipeline` (classifier fit + sharded ASR evaluation).
//!
//! ```sh
//! cargo run --release --example attribute_inference_attack
//! ```

use ldp_core::attacks::{AttackKind, InferenceConfig};
use ldp_core::inference::{AttackClassifier, AttackModel};
use ldp_core::solutions::{RsFdProtocol, SolutionKind};
use ldp_datasets::corpora::acs_employment_like;
use ldp_gbdt::GbdtParams;
use ldp_protocols::UeMode;
use ldp_sim::{AttackPipeline, CollectionPipeline};

fn main() {
    let dataset = acs_employment_like(2_000, 3);
    let ks = dataset.schema().cardinalities();
    let classifier = AttackClassifier::Gbdt(GbdtParams {
        rounds: 15,
        max_depth: 4,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    });

    println!(
        "ACSEmployment-like population: n = {}, d = {} (baseline = {:.1}%)\n",
        dataset.n(),
        dataset.d(),
        100.0 / dataset.d() as f64
    );
    println!("{:<15} {:>4} {:>10}", "protocol", "eps", "AIF-ACC %");

    let protocols = [
        RsFdProtocol::Grr,
        RsFdProtocol::UeZ(UeMode::Symmetric),
        RsFdProtocol::UeZ(UeMode::Optimized),
        RsFdProtocol::UeR(UeMode::Optimized),
    ];
    for protocol in protocols {
        for epsilon in [2.0, 6.0, 10.0] {
            // Collection: the deployed RS+FD solution, streamed and sharded.
            let collection =
                CollectionPipeline::from_kind(SolutionKind::RsFd(protocol), &ks, epsilon)
                    .expect("rsfd collection")
                    .seed(17)
                    .threads(2);
            // Attack: NK classifier fit on the observed wire, then sharded,
            // per-target-seeded ASR evaluation over the test users.
            let run = AttackPipeline::from_kind(AttackKind::SampledAttribute(InferenceConfig {
                model: AttackModel::NoKnowledge { synth_factor: 1.0 },
                classifier: classifier.clone(),
            }))
            .expect("attack kind")
            .seed(17)
            .threads(2)
            .run(&collection, &dataset);
            let outcome = run.outcome.inference().expect("inference outcome");
            println!(
                "{:<15} {:>4.0} {:>10.1}",
                protocol.name(),
                epsilon,
                outcome.aif_acc
            );
        }
    }

    println!("\nRS+FD[SUE-z] leaks the sampled attribute almost completely at high");
    println!("epsilon (fake zero-vectors are distinguishable); the paper recommends");
    println!("never deploying it. GRR/UE-r leak less but still beat the baseline.");
}
