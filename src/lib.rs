//! # risks-ldp
//!
//! Umbrella crate of the Rust reproduction of *"On the Risks of Collecting
//! Multidimensional Data Under Local Differential Privacy"* (Arcolezi, Gambs,
//! Couchot, Palamidessi — PVLDB 16(5), 2023).
//!
//! This crate re-exports the workspace members under stable module names and
//! hosts the runnable examples (`cargo run --release --example quickstart`)
//! and the cross-crate integration tests.
//!
//! * [`protocols`] — LDP frequency oracles (GRR, OLH, ω-SS, SUE, OUE),
//!   estimators and the plausible-deniability attack layer.
//! * [`datasets`] — synthetic census-like corpora and prior distributions.
//! * [`gbdt`] — the gradient-boosted-trees / logistic-regression classifier
//!   substrate standing in for XGBoost.
//! * [`core`] — multidimensional solutions (SPL/SMP/RS+FD/RS+RFD), the
//!   re-identification and attribute-inference attacks, the PIE model.
//! * [`sim`] — the multi-survey campaign engine and parallel helpers.

pub use ldp_core as core;
pub use ldp_datasets as datasets;
pub use ldp_gbdt as gbdt;
pub use ldp_protocols as protocols;
pub use ldp_sim as sim;
