//! # risks-ldp
//!
//! Umbrella crate of the Rust reproduction of *"On the Risks of Collecting
//! Multidimensional Data Under Local Differential Privacy"* (Arcolezi, Gambs,
//! Couchot, Palamidessi — PVLDB 16(5), 2023).
//!
//! This crate re-exports the workspace members under stable module names and
//! hosts the runnable examples (`cargo run --release --example quickstart`)
//! and the cross-crate integration tests.
//!
//! * [`protocols`] — LDP frequency oracles (GRR, OLH, ω-SS, SUE, OUE),
//!   estimators and the plausible-deniability attack layer.
//! * [`datasets`] — synthetic census-like corpora and prior distributions.
//! * [`gbdt`] — the gradient-boosted-trees / logistic-regression classifier
//!   substrate standing in for XGBoost.
//! * [`core`] — multidimensional solutions (SPL/SMP/RS+FD/RS+RFD), the
//!   unified adversary layer (`core::attacks`), the re-identification and
//!   attribute-inference attacks, the PIE model.
//! * [`server`] — the traffic-shaped streaming ingestion service: bounded
//!   channels, sharded aggregators, estimate-while-ingesting snapshots and
//!   graceful drain ([`server::LdpServer`]).
//! * [`sim`] — the multi-survey campaign engine, the streaming
//!   [`CollectionPipeline`](sim::CollectionPipeline), the sharded
//!   [`AttackPipeline`](sim::AttackPipeline), the seeded
//!   [`TrafficGenerator`](sim::TrafficGenerator) and parallel helpers.
//!
//! ## The streaming collection API
//!
//! The server side is streaming-first: solutions are chosen at runtime via
//! [`core::solutions::SolutionKind`], sanitize through the object-safe
//! [`core::solutions::DynSolution`], and aggregate incrementally through
//! [`core::solutions::MultidimAggregator`] — `O(Σ_j k_j)` state, mergeable
//! across shards, bit-identical to batch estimation:
//!
//! ```
//! use risks_ldp::core::solutions::{RsFdProtocol, SolutionKind};
//! use risks_ldp::datasets::corpora::adult_like;
//! use risks_ldp::sim::CollectionPipeline;
//!
//! let dataset = adult_like(2_000, 7);
//! let run = CollectionPipeline::from_kind(
//!     SolutionKind::RsFd(RsFdProtocol::Grr),
//!     &dataset.schema().cardinalities(),
//!     1.0,
//! )
//! .unwrap()
//! .seed(42)
//! .threads(4)
//! .run(&dataset);
//! assert_eq!(run.n, 2_000);
//! assert_eq!(run.estimates.len(), dataset.d());
//! ```
//!
//! ## The adversary API
//!
//! The attack side mirrors this surface: threat models are chosen at runtime
//! via [`core::attacks::AttackKind`], fit through the object-safe
//! [`core::attacks::Attack`] trait, and evaluated by the seeded, sharded
//! [`AttackPipeline`](sim::AttackPipeline) — bit-identical RID-ACC/ASR for
//! every thread count:
//!
//! ```
//! use risks_ldp::core::attacks::{AttackKind, ReidentConfig};
//! use risks_ldp::core::solutions::SolutionKind;
//! use risks_ldp::datasets::corpora::adult_like;
//! use risks_ldp::protocols::ProtocolKind;
//! use risks_ldp::sim::{AttackPipeline, CollectionPipeline};
//!
//! let dataset = adult_like(1_000, 7);
//! let collection = CollectionPipeline::from_kind(
//!     SolutionKind::Smp(ProtocolKind::Grr),
//!     &dataset.schema().cardinalities(),
//!     4.0,
//! )
//! .unwrap()
//! .seed(42)
//! .threads(4);
//! let run = AttackPipeline::from_kind(AttackKind::Reident(ReidentConfig::default()))
//!     .unwrap()
//!     .seed(42)
//!     .threads(4)
//!     .run(&collection, &dataset);
//! assert_eq!(run.outcome.reident().unwrap().n_targets, 1_000);
//! ```
//!
//! ## Streaming ingestion
//!
//! The serving layer accepts sustained traffic instead of one-shot batches:
//! a seeded [`TrafficGenerator`](sim::TrafficGenerator) schedules arrivals
//! (steady, burst, ramp, churn) and
//! [`CollectionPipeline::serve`](sim::CollectionPipeline::serve) pushes the
//! sanitized reports through the bounded-channel
//! [`LdpServer`](server::LdpServer) — bit-identical to the batch `run` at
//! equal seed:
//!
//! ```
//! use risks_ldp::core::solutions::{RsFdProtocol, SolutionKind};
//! use risks_ldp::datasets::corpora::adult_like;
//! use risks_ldp::sim::traffic::{TrafficGenerator, TrafficShape};
//! use risks_ldp::sim::CollectionPipeline;
//!
//! let dataset = adult_like(2_000, 7);
//! let pipeline = CollectionPipeline::from_kind(
//!     SolutionKind::RsFd(RsFdProtocol::Grr),
//!     &dataset.schema().cardinalities(),
//!     1.0,
//! )
//! .unwrap()
//! .seed(42)
//! .threads(4);
//! let traffic = TrafficGenerator::new(TrafficShape::Burst, dataset.n()).seed(42);
//! let streamed = pipeline.serve(&dataset, &traffic);
//! let batch = pipeline.run(&dataset);
//! assert_eq!(streamed.aggregator.counts(), batch.aggregator.counts());
//! ```

pub use ldp_core as core;
pub use ldp_datasets as datasets;
pub use ldp_gbdt as gbdt;
pub use ldp_protocols as protocols;
pub use ldp_server as server;
pub use ldp_sim as sim;
