//! # risks-ldp
//!
//! Umbrella crate of the Rust reproduction of *"On the Risks of Collecting
//! Multidimensional Data Under Local Differential Privacy"* (Arcolezi, Gambs,
//! Couchot, Palamidessi — PVLDB 16(5), 2023).
//!
//! This crate re-exports the workspace members under stable module names and
//! hosts the runnable examples (`cargo run --release --example quickstart`)
//! and the cross-crate integration tests.
//!
//! * [`protocols`] — LDP frequency oracles (GRR, OLH, ω-SS, SUE, OUE),
//!   estimators and the plausible-deniability attack layer.
//! * [`datasets`] — synthetic census-like corpora and prior distributions.
//! * [`gbdt`] — the gradient-boosted-trees / logistic-regression classifier
//!   substrate standing in for XGBoost.
//! * [`core`] — multidimensional solutions (SPL/SMP/RS+FD/RS+RFD), the
//!   re-identification and attribute-inference attacks, the PIE model.
//! * [`sim`] — the multi-survey campaign engine, the streaming
//!   [`CollectionPipeline`](sim::CollectionPipeline) and parallel helpers.
//!
//! ## The streaming collection API
//!
//! The server side is streaming-first: solutions are chosen at runtime via
//! [`core::solutions::SolutionKind`], sanitize through the object-safe
//! [`core::solutions::DynSolution`], and aggregate incrementally through
//! [`core::solutions::MultidimAggregator`] — `O(Σ_j k_j)` state, mergeable
//! across shards, bit-identical to batch estimation:
//!
//! ```
//! use risks_ldp::core::solutions::{RsFdProtocol, SolutionKind};
//! use risks_ldp::datasets::corpora::adult_like;
//! use risks_ldp::sim::CollectionPipeline;
//!
//! let dataset = adult_like(2_000, 7);
//! let run = CollectionPipeline::from_kind(
//!     SolutionKind::RsFd(RsFdProtocol::Grr),
//!     &dataset.schema().cardinalities(),
//!     1.0,
//! )
//! .unwrap()
//! .seed(42)
//! .threads(4)
//! .run(&dataset);
//! assert_eq!(run.n, 2_000);
//! assert_eq!(run.estimates.len(), dataset.d());
//! ```

pub use ldp_core as core;
pub use ldp_datasets as datasets;
pub use ldp_gbdt as gbdt;
pub use ldp_protocols as protocols;
pub use ldp_sim as sim;
