//! Seeded soak test: 10M synthetic users streamed through `ldp_server`
//! under churn traffic, asserting the server's flat-memory contract and a
//! final statistical conformance check.
//!
//! Ignored by default — run it nightly-style with:
//!
//! ```sh
//! cargo test --release --test soak -- --ignored --nocapture
//! ```
//!
//! Memory is held flat on *both* sides of the channel: tuples are
//! synthesized from the uid on the fly (no dataset materialization), waves
//! are produced lazily, the channels are bounded, and the server folds every
//! report into `O(shards · Σ_j k_j)` support counts on arrival. The test
//! asserts the structural side of that contract (state size independent of
//! n) and, best-effort on Linux, that process RSS does not grow with the
//! population.

use ldp_core::solutions::{RsFdProtocol, SolutionKind};
use ldp_protocols::hash::mix3;
use ldp_server::{Envelope, LdpServer, ServerConfig};
use ldp_sim::traffic::{TrafficGenerator, TrafficShape};
use ldp_sim::user_rng;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 10_000_000;
const SEED: u64 = 0x50AC;

/// Skewed synthetic marginal over `k` values: P(v) ∝ 1/(v+1).
fn skewed_pmf(k: usize) -> Vec<f64> {
    let total: f64 = (0..k).map(|v| 1.0 / (v + 1) as f64).sum();
    (0..k).map(|v| 1.0 / ((v + 1) as f64 * total)).collect()
}

/// The user's true tuple, synthesized deterministically from the uid by
/// inverse-CDF sampling of per-attribute skewed marginals.
fn tuple_of(uid: u64, cdfs: &[Vec<f64>]) -> Vec<u32> {
    cdfs.iter()
        .enumerate()
        .map(|(j, cdf)| {
            let mut rng = StdRng::seed_from_u64(mix3(uid, j as u64, 0x7D9));
            let u: f64 = rand::Rng::random(&mut rng);
            cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u32
        })
        .collect()
}

/// Best-effort resident-set size in kB (Linux `/proc`); `None` elsewhere.
fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
#[ignore = "10M-user soak; run nightly with --ignored"]
fn ten_million_users_through_the_server_under_churn() {
    let ks = [16usize, 8, 5, 4];
    let cdfs: Vec<Vec<f64>> = ks
        .iter()
        .map(|&k| {
            let mut acc = 0.0;
            skewed_pmf(k)
                .into_iter()
                .map(|p| {
                    acc += p;
                    acc
                })
                .collect()
        })
        .collect();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let solution = kind.build(&ks, 2.0).unwrap();
    let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(4));

    let traffic = TrafficGenerator::new(TrafficShape::Churn, N)
        .seed(SEED)
        .wave(8192)
        .churn(0.35);
    let rss_early = rss_kb();
    let mut ingested = 0usize;
    let mut rss_mid = None;
    for wave in traffic.waves() {
        ingested += wave.len();
        server.ingest_batch(wave.into_iter().map(|uid| {
            // The pipeline's per-user stream (SmallRng over (seed, uid)).
            let mut rng = user_rng(SEED, uid);
            Envelope {
                uid,
                report: solution.report(&tuple_of(uid, &cdfs), &mut rng),
            }
        }));
        if rss_mid.is_none() && ingested >= N / 10 {
            rss_mid = rss_kb();
        }
    }
    let rss_late = rss_kb();
    let snapshot = server.drain();

    // Every churned user eventually reported, exactly once.
    assert_eq!(ingested, N);
    assert_eq!(snapshot.n, N as u64);

    // Flat-memory contract, structurally: the server state is exactly one
    // support-count table of Σ k_j cells per attribute — independent of n.
    assert_eq!(snapshot.aggregator.ks(), &ks);
    let cells: usize = snapshot.aggregator.counts().iter().map(Vec::len).sum();
    assert_eq!(cells, ks.iter().sum::<usize>());

    // Flat-memory contract, empirically (Linux best-effort): RSS after the
    // full 10M-user stream must not exceed the 1M-user mark by more than a
    // small constant — per-user allocation growth would add hundreds of MB.
    if let (Some(mid), Some(late)) = (rss_mid, rss_late) {
        assert!(
            late <= mid + 64 * 1024,
            "RSS grew from {mid} kB (at n/10) to {late} kB (at n): per-user growth?"
        );
    }
    eprintln!(
        "soak: rss early/mid/late = {rss_early:?}/{rss_mid:?}/{rss_late:?} kB; \
         drained n = {}",
        snapshot.n
    );

    // Final conformance check: at n = 10M the RS+FD[GRR] estimator must sit
    // very close to the synthesized population's true marginals. The band
    // (0.01 absolute) is ≳ 20 analytic standard errors at this n — loose
    // enough for the fake-data variance inflation, far tighter than any
    // estimator-bias regression.
    for (j, est) in snapshot.estimates.iter().enumerate() {
        let truth = skewed_pmf(ks[j]);
        for (v, (&e, &f)) in est.iter().zip(&truth).enumerate() {
            assert!(
                (e - f).abs() < 0.01,
                "attr {j} value {v}: estimate {e:.5} vs true {f:.5}"
            );
        }
    }
}
