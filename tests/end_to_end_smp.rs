//! Integration: the full SMP collection → profiling → re-identification
//! pipeline reproduces the paper's qualitative Fig. 2 findings.

use ldp_core::reident::ReidentAttack;
use ldp_datasets::corpora::adult_like;
use ldp_protocols::ProtocolKind;
use ldp_sim::{rid_acc_multi, PrivacyModel, SamplingSetting, SmpCampaign, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rid_after_five_surveys(
    kind: ProtocolKind,
    epsilon: f64,
    setting: SamplingSetting,
) -> (f64, f64) {
    let dataset = adult_like(3_000, 5);
    let ks = dataset.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(8);
    let plan = SurveyPlan::generate(dataset.d(), 5, &mut rng);
    let campaign = SmpCampaign::new(
        kind,
        &ks,
        &PrivacyModel::Ldp { epsilon },
        dataset.n(),
        setting,
    )
    .expect("campaign");
    let snaps = campaign.run(&dataset, &plan, 31, 2);
    let all: Vec<usize> = (0..dataset.d()).collect();
    let attack = ReidentAttack::build(&dataset, &all);
    let accs = rid_acc_multi(&attack, &snaps[4], &[1, 10], 7, 2);
    (accs[0], accs[1])
}

#[test]
fn grr_reidentification_far_exceeds_baseline_at_high_epsilon() {
    let (top1, top10) = rid_after_five_surveys(ProtocolKind::Grr, 8.0, SamplingSetting::Uniform);
    let baseline1 = 100.0 / 3000.0;
    assert!(
        top1 > 50.0 * baseline1,
        "top-1 {top1} vs baseline {baseline1}"
    );
    assert!(top10 > top1, "top-10 {top10} must dominate top-1 {top1}");
}

#[test]
fn oue_resists_much_better_than_grr() {
    let (grr1, _) = rid_after_five_surveys(ProtocolKind::Grr, 8.0, SamplingSetting::Uniform);
    let (oue1, _) = rid_after_five_surveys(ProtocolKind::Oue, 8.0, SamplingSetting::Uniform);
    assert!(
        grr1 > 2.0 * oue1,
        "paper ordering violated: GRR {grr1} vs OUE {oue1}"
    );
}

#[test]
fn risk_grows_with_epsilon() {
    let (lo, _) = rid_after_five_surveys(ProtocolKind::Grr, 1.0, SamplingSetting::Uniform);
    let (hi, _) = rid_after_five_surveys(ProtocolKind::Grr, 8.0, SamplingSetting::Uniform);
    assert!(hi > lo, "RID-ACC must grow with epsilon: {lo} -> {hi}");
}

#[test]
fn nonuniform_metric_reduces_risk() {
    let (uni, _) = rid_after_five_surveys(ProtocolKind::Grr, 6.0, SamplingSetting::Uniform);
    let (non, _) = rid_after_five_surveys(ProtocolKind::Grr, 6.0, SamplingSetting::NonUniform);
    assert!(
        non < uni,
        "memoized with-replacement sampling must lower RID-ACC: {non} vs {uni}"
    );
}

#[test]
fn partial_background_knowledge_reduces_risk() {
    let dataset = adult_like(3_000, 6);
    let ks = dataset.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(9);
    let plan = SurveyPlan::generate(dataset.d(), 5, &mut rng);
    let campaign = SmpCampaign::new(
        ProtocolKind::Grr,
        &ks,
        &PrivacyModel::Ldp { epsilon: 8.0 },
        dataset.n(),
        SamplingSetting::Uniform,
    )
    .expect("campaign");
    let snaps = campaign.run(&dataset, &plan, 12, 2);
    let all: Vec<usize> = (0..dataset.d()).collect();
    let fk = ReidentAttack::build(&dataset, &all);
    let pk = ReidentAttack::build(&dataset, &all[..dataset.d() / 2]);
    let fk_acc = rid_acc_multi(&fk, &snaps[4], &[10], 3, 2)[0];
    let pk_acc = rid_acc_multi(&pk, &snaps[4], &[10], 3, 2)[0];
    assert!(
        pk_acc < fk_acc,
        "PK-RI must be weaker than FK-RI: {pk_acc} vs {fk_acc}"
    );
}
