//! Cross-crate property tests: invariants that must hold for arbitrary
//! configurations of the full stack.

use ldp_core::inference::encode_features;
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol, Smp};
use ldp_protocols::{ProtocolKind, UeMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_ks() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..20, 2..6)
}

fn arb_rsfd_protocol() -> impl Strategy<Value = RsFdProtocol> {
    prop_oneof![
        Just(RsFdProtocol::Grr),
        Just(RsFdProtocol::UeZ(UeMode::Symmetric)),
        Just(RsFdProtocol::UeZ(UeMode::Optimized)),
        Just(RsFdProtocol::UeR(UeMode::Symmetric)),
        Just(RsFdProtocol::UeR(UeMode::Optimized)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RS+FD tuples always cover every attribute with the right report shape
    /// and a valid hidden sampled index.
    #[test]
    fn rsfd_reports_are_well_formed(
        ks in arb_ks(),
        protocol in arb_rsfd_protocol(),
        eps in 0.2f64..8.0,
        seed in any::<u64>(),
    ) {
        let solution = RsFd::new(protocol, &ks, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tuple: Vec<u32> = ks.iter().map(|&k| (seed % k as u64) as u32).collect();
        let report = solution.report(&tuple, &mut rng);
        prop_assert_eq!(report.values.len(), ks.len());
        prop_assert!(report.sampled < ks.len());
        // Feature encoding accepts every report the solution produces.
        let x = encode_features(&[&report], &ks, solution.is_unary());
        let width: usize = if solution.is_unary() { ks.iter().sum() } else { ks.len() };
        prop_assert_eq!(x.n_cols(), width);
    }

    /// The amplified budget is consistent between RS+FD and RS+RFD and always
    /// exceeds the per-user budget.
    #[test]
    fn amplified_budgets_agree(
        ks in arb_ks(),
        eps in 0.2f64..8.0,
    ) {
        let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, eps).unwrap();
        let uniform: Vec<Vec<f64>> = ks.iter().map(|&k| vec![1.0 / k as f64; k]).collect();
        let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, eps, uniform).unwrap();
        prop_assert!((rsfd.epsilon_amplified() - rsrfd.epsilon_amplified()).abs() < 1e-12);
        prop_assert!(rsfd.epsilon_amplified() > eps);
    }

    /// SMP estimation from a uniform population stays near uniform for every
    /// protocol family (no systematic bias anywhere in the pipeline).
    #[test]
    fn smp_estimates_unbiased_on_uniform_population(
        kind in prop_oneof![
            Just(ProtocolKind::Grr),
            Just(ProtocolKind::Olh),
            Just(ProtocolKind::Ss),
            Just(ProtocolKind::Sue),
            Just(ProtocolKind::Oue),
        ],
        k in 3usize..10,
        seed in any::<u64>(),
    ) {
        let ks = vec![k, k];
        let smp = Smp::new(kind, &ks, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = (0..4000u32)
            .map(|i| smp.report(&[i % k as u32, (i / 7) % k as u32], &mut rng))
            .collect();
        let est = smp.estimate_normalized(&reports);
        for attr in &est {
            for &f in attr {
                prop_assert!((f - 1.0 / k as f64).abs() < 0.2, "estimate {f} too far from uniform");
            }
        }
    }

    /// RS+RFD rejects priors that do not match the schema, for any shape.
    #[test]
    fn rsrfd_prior_validation(
        ks in arb_ks(),
        eps in 0.2f64..4.0,
    ) {
        // One prior too few.
        let mut short: Vec<Vec<f64>> = ks.iter().map(|&k| vec![1.0 / k as f64; k]).collect();
        short.pop();
        prop_assert!(RsRfd::new(RsRfdProtocol::Grr, &ks, eps, short).is_err());
        // Unnormalized prior.
        let mut bad: Vec<Vec<f64>> = ks.iter().map(|&k| vec![1.0 / k as f64; k]).collect();
        bad[0][0] += 0.5;
        prop_assert!(RsRfd::new(RsRfdProtocol::Grr, &ks, eps, bad).is_err());
    }
}
