//! Determinism properties of the *networked* ingestion path: a
//! [`WireServer`] fed sanitized reports over real loopback sockets drains
//! **bit-identically** to the in-process batch `CollectionPipeline::run` at
//! equal seed — for every solution family, across server shard counts
//! {1, 2, 8} × producer connections {1, 2, 4}, and including a quiesced
//! snapshot taken mid-stream while the producer fleet holds at a barrier.
//!
//! This is the socket-tier extension of `tests/server_equivalence.rs`: the
//! per-user randomness is pinned by `user_rng(seed, uid)` on the producer
//! side and the aggregation is exact integer merging on the server side, so
//! neither the frame boundaries, nor the connection interleaving, nor the
//! shard count may leak into the drained estimates.

use std::sync::Barrier;
use std::thread;

use ldp_core::solutions::{MixedKind, RsFdProtocol, RsRfdProtocol, SolutionKind};
use ldp_core::NumericKind;
use ldp_datasets::corpora::adult_like;
use ldp_datasets::mixed::mixed_survey_like;
use ldp_datasets::Dataset;
use ldp_protocols::ProtocolKind;
use ldp_server::wire::WireSnapshot;
use ldp_server::{ServerConfig, ServerSnapshot, WireServer};
use ldp_sim::traffic::{TrafficGenerator, TrafficShape};
use ldp_sim::{user_rng, CollectionPipeline, CollectionRun, NetClient};

const SEED: u64 = 17;

fn assert_drain_matches_run(snapshot: &ServerSnapshot, reference: &CollectionRun, label: &str) {
    assert_eq!(snapshot.n, reference.n, "{label}: n");
    assert_eq!(
        snapshot.aggregator.counts(),
        reference.aggregator.counts(),
        "{label}: support counts"
    );
    for (x, y) in snapshot
        .estimates
        .iter()
        .flatten()
        .zip(reference.estimates.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: estimates");
    }
    for (x, y) in snapshot
        .normalized
        .iter()
        .flatten()
        .zip(reference.normalized.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: normalized");
    }
}

fn assert_wire_snapshot_matches_run(
    snapshot: &WireSnapshot,
    reference: &CollectionRun,
    label: &str,
) {
    assert_eq!(snapshot.n, reference.n, "{label}: n");
    for (x, y) in snapshot
        .estimates
        .iter()
        .flatten()
        .zip(reference.estimates.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: estimates");
    }
    for (x, y) in snapshot
        .normalized
        .iter()
        .flatten()
        .zip(reference.normalized.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: normalized");
    }
}

/// Runs a `connections`-producer fleet against `server`'s address using
/// [`CollectionPipeline::serve_remote_part`] and returns the summed
/// DRAIN-acked report counts.
fn run_fleet(
    kind: SolutionKind,
    epsilon: f64,
    ds: &Dataset,
    traffic: &TrafficGenerator,
    addr: &str,
    connections: usize,
) -> u64 {
    let ks = ds.schema().cardinalities();
    thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|part| {
                let (ks, addr) = (ks.clone(), addr);
                s.spawn(move || {
                    CollectionPipeline::from_kind(kind, &ks, epsilon)
                        .unwrap()
                        .seed(SEED)
                        .serve_remote_part(ds, traffic, addr, part, connections, 0, &mut |_| {})
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

#[test]
fn socket_drain_is_bit_identical_across_shards_and_connections() {
    let ds = adult_like(600, 3);
    let ks = ds.schema().cardinalities();
    for kind in [
        SolutionKind::Spl(ProtocolKind::Grr),
        SolutionKind::Spl(ProtocolKind::Olh),
        SolutionKind::Smp(ProtocolKind::Oue),
        SolutionKind::Smp(ProtocolKind::Ss),
        SolutionKind::RsFd(RsFdProtocol::Grr),
        SolutionKind::RsFd(RsFdProtocol::UeZ(ldp_protocols::UeMode::Optimized)),
        SolutionKind::RsRfd(RsRfdProtocol::Grr),
    ] {
        // The reference: a single-threaded in-process batch pass.
        let reference = CollectionPipeline::from_kind(kind, &ks, 2.0)
            .unwrap()
            .seed(SEED)
            .threads(1)
            .run(&ds);
        let traffic = TrafficGenerator::new(TrafficShape::Steady, ds.n())
            .seed(SEED)
            .wave(61);
        for shards in [1usize, 2, 8] {
            for connections in [1usize, 2, 4] {
                let solution = kind.build(&ks, 2.0).unwrap();
                let server = WireServer::bind(
                    "127.0.0.1:0",
                    solution,
                    ServerConfig::default().shards(shards),
                )
                .unwrap();
                let addr = server.local_addr().to_string();
                let acked = run_fleet(kind, 2.0, &ds, &traffic, &addr, connections);
                assert_eq!(acked, ds.n() as u64, "{kind} s={shards} c={connections}");
                server.wait_for_producers(connections);
                let snapshot = server.finish();
                assert_drain_matches_run(
                    &snapshot,
                    &reference,
                    &format!("{kind} shards={shards} connections={connections}"),
                );
            }
        }
    }
}

#[test]
fn mixed_socket_drain_is_bit_identical_to_the_batch_pipeline() {
    // The heterogeneous solution family over real sockets: categorical
    // support counts and numeric fixed-point sums drained from a WireServer
    // must match the in-process batch pass bit for bit, for every numeric
    // mechanism and server shard count.
    let mixed = mixed_survey_like(700, 11);
    let ks = mixed.ks();
    for numeric in [
        NumericKind::Duchi,
        NumericKind::Piecewise,
        NumericKind::Hybrid,
    ] {
        let kind = SolutionKind::Mixed(MixedKind {
            protocol: ProtocolKind::Grr,
            numeric,
            sample_k: 2,
        });
        let solution = kind.build(&ks, 2.0).unwrap();
        let reference = CollectionPipeline::new(solution.clone())
            .seed(SEED)
            .threads(1)
            .run_mixed(&mixed);
        let traffic = TrafficGenerator::new(TrafficShape::Burst, mixed.n())
            .seed(SEED)
            .wave(53);
        for shards in [1usize, 2, 8] {
            let server = WireServer::bind(
                "127.0.0.1:0",
                solution.clone(),
                ServerConfig::default().shards(shards),
            )
            .unwrap();
            let addr = server.local_addr().to_string();
            let acked = CollectionPipeline::new(solution.clone())
                .seed(SEED)
                .serve_remote_mixed(&mixed, &traffic, &addr)
                .unwrap();
            assert_eq!(acked, mixed.n() as u64, "{numeric:?} shards={shards}");
            server.wait_for_producers(1);
            let snapshot = server.finish();
            assert_eq!(
                snapshot.aggregator.num_sums(),
                reference.aggregator.num_sums(),
                "{numeric:?} shards={shards}: numeric fixed-point sums"
            );
            assert_drain_matches_run(
                &snapshot,
                &reference,
                &format!("MIXED[{numeric:?}] shards={shards}"),
            );
        }
    }
}

#[test]
fn mixed_multi_producer_fleet_drains_bit_identically() {
    // A fleet of NetClient connections pushing mixed reports (partitioned by
    // uid) must fan in to the same drained bits as the single batch pass —
    // the numeric entries survive CompactBatch encoding, frame boundaries
    // and cross-connection interleaving unchanged.
    let mixed = mixed_survey_like(500, 23);
    let ks = mixed.ks();
    let solution = SolutionKind::Mixed(MixedKind {
        protocol: ProtocolKind::Grr,
        numeric: NumericKind::Piecewise,
        sample_k: 2,
    })
    .build(&ks, 1.5)
    .unwrap();
    let reference = CollectionPipeline::new(solution.clone())
        .seed(SEED)
        .threads(1)
        .run_mixed(&mixed);
    for connections in [1usize, 2, 4] {
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(3),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        thread::scope(|s| {
            for part in 0..connections {
                let (solution, addr, mixed) = (solution.clone(), addr.as_str(), &mixed);
                s.spawn(move || {
                    let mut client = NetClient::connect(addr, &solution).unwrap().batch_size(16);
                    for uid in (0..mixed.n() as u64).filter(|&u| u as usize % connections == part) {
                        let report = solution
                            .report_mixed(
                                mixed.cat().row(uid as usize),
                                mixed.num_row(uid as usize),
                                &mut user_rng(SEED, uid),
                            )
                            .unwrap();
                        client.push(uid, &report).unwrap();
                    }
                    client.finish().unwrap()
                });
            }
        });
        server.wait_for_producers(connections);
        let snapshot = server.finish();
        assert_eq!(
            snapshot.aggregator.num_sums(),
            reference.aggregator.num_sums(),
            "{connections} connections: numeric fixed-point sums"
        );
        assert_drain_matches_run(
            &snapshot,
            &reference,
            &format!("mixed fleet, {connections} connections"),
        );
    }
}

#[test]
fn traffic_shape_never_leaks_into_the_socket_drain() {
    // The arrival schedule reorders the wire traffic but must not change a
    // single drained bit.
    let ds = adult_like(400, 5);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let reference = CollectionPipeline::from_kind(kind, &ks, 1.0)
        .unwrap()
        .seed(SEED)
        .run(&ds);
    for shape in TrafficShape::ALL {
        let traffic = TrafficGenerator::new(shape, ds.n()).seed(SEED).wave(37);
        let server = WireServer::bind(
            "127.0.0.1:0",
            kind.build(&ks, 1.0).unwrap(),
            ServerConfig::default().shards(2),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let acked = run_fleet(kind, 1.0, &ds, &traffic, &addr, 2);
        assert_eq!(acked, ds.n() as u64, "{shape}");
        server.wait_for_producers(2);
        assert_drain_matches_run(&server.finish(), &reference, &format!("shape {shape}"));
    }
}

#[test]
fn mid_stream_quiesced_snapshot_equals_batch_over_the_prefix() {
    // While the whole producer fleet holds at a barrier after streaming the
    // users 0..PREFIX, a quiesced SNAPSHOT round trip must report exactly
    // the prefix — bit-identical to a batch run over those users — before
    // the fleet resumes and the final drain equals the full-population run.
    const PREFIX: usize = 260;
    let ds = adult_like(500, 9);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let solution = kind.build(&ks, 1.5).unwrap();
    let prefix_ds = Dataset::new(
        ds.schema().clone(),
        (0..PREFIX).flat_map(|u| ds.row(u).to_vec()).collect(),
    );
    let prefix_reference = CollectionPipeline::new(solution.clone())
        .seed(SEED)
        .run(&prefix_ds);
    let full_reference = CollectionPipeline::new(solution.clone())
        .seed(SEED)
        .run(&ds);

    for connections in [1usize, 2, 4] {
        let server = WireServer::bind(
            "127.0.0.1:0",
            solution.clone(),
            ServerConfig::default().shards(3),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let flushed = Barrier::new(connections);
        let snapped = Barrier::new(connections);
        thread::scope(|s| {
            for part in 0..connections {
                let (solution, addr) = (solution.clone(), addr.as_str());
                let (ds, flushed, snapped) = (&ds, &flushed, &snapped);
                let prefix_reference = &prefix_reference;
                s.spawn(move || {
                    let mut client = NetClient::connect(addr, &solution).unwrap().batch_size(32);
                    let mine = |uid: u64| uid as usize % connections == part;
                    for uid in (0..PREFIX as u64).filter(|&u| mine(u)) {
                        let report =
                            solution.report(ds.row(uid as usize), &mut user_rng(SEED, uid));
                        client.push(uid, &report).unwrap();
                    }
                    // A snapshot round trip doubles as an ingestion ack for
                    // this connection's frames: the handler reads in order,
                    // so once the reply arrives our prefix is in the shards.
                    client.snapshot(false).unwrap();
                    flushed.wait();
                    if part == 0 {
                        // Everyone has flushed and holds; the quiesce
                        // barriers the shards, so the snapshot covers the
                        // prefix exactly.
                        let snapshot = client.snapshot(true).unwrap();
                        assert_wire_snapshot_matches_run(
                            &snapshot,
                            prefix_reference,
                            &format!("quiesced prefix, {connections} connections"),
                        );
                    }
                    snapped.wait();
                    for uid in (PREFIX as u64..ds.n() as u64).filter(|&u| mine(u)) {
                        let report =
                            solution.report(ds.row(uid as usize), &mut user_rng(SEED, uid));
                        client.push(uid, &report).unwrap();
                    }
                    client.finish().unwrap()
                });
            }
        });
        server.wait_for_producers(connections);
        assert_drain_matches_run(
            &server.finish(),
            &full_reference,
            &format!("full drain, {connections} connections"),
        );
    }
}
