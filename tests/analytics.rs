//! Integration: the analytic layers (Fig. 1 math, amplification, PIE) agree
//! with the simulation layers across crates.

use ldp_core::amplification::amplify;
use ldp_core::pie::{self, PieDecision};
use ldp_core::profiling::{expected_acc_nonuniform, expected_acc_uniform};
use ldp_datasets::corpora::adult_like;
use ldp_protocols::{deniability, FrequencyOracle, ProtocolKind};
use ldp_sim::{PrivacyModel, SamplingSetting, SmpCampaign, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fig1_shape_grr_ss_sue_dominate() {
    // The paper's Fig. 1(a): at ε = 10, GRR / ω-SS / SUE approach 100%
    // expected profile accuracy while OLH / OUE stay bounded.
    let ks = [74usize, 7, 16];
    let acc_u = |kind: ProtocolKind| {
        let accs: Vec<f64> = ks
            .iter()
            .map(|&k| deniability::expected_acc(&kind.build(k, 10.0).unwrap()))
            .collect();
        expected_acc_uniform(&accs)
    };
    assert!(acc_u(ProtocolKind::Grr) > 0.95);
    assert!(acc_u(ProtocolKind::Ss) > 0.95);
    // SUE's exact product is ≈ 0.64 (extra flipped bits on the k = 74
    // attribute); still far above the OLH/OUE plateau, as in Fig. 1(a).
    assert!(acc_u(ProtocolKind::Sue) > 0.55);
    assert!(acc_u(ProtocolKind::Olh) < 0.25);
    assert!(acc_u(ProtocolKind::Oue) < 0.25);
    assert!(acc_u(ProtocolKind::Sue) > 2.0 * acc_u(ProtocolKind::Oue));
}

#[test]
fn fig1_nonuniform_cap_is_d_factorial_over_d_pow_d() {
    // Fig. 1(b): with perfect per-survey accuracy the non-uniform metric
    // caps at d!/d^d (≈ 0.222 for d = 3).
    let accs = [1.0, 1.0, 1.0];
    let cap = expected_acc_nonuniform(&accs);
    assert!((cap - 6.0 / 27.0).abs() < 1e-12);
    // And every protocol's curve sits below the cap.
    for kind in ProtocolKind::ALL {
        let accs: Vec<f64> = [74usize, 7, 16]
            .iter()
            .map(|&k| deniability::expected_acc(&kind.build(k, 10.0).unwrap()))
            .collect();
        assert!(expected_acc_nonuniform(&accs) <= cap + 1e-12);
    }
}

#[test]
fn empirical_profile_correctness_tracks_eq4() {
    // Simulated fully-correct-profile rate ≈ Π ACC_FO (Eq. 4).
    let dataset = adult_like(2_000, 20);
    let ks = dataset.schema().cardinalities();
    let kind = ProtocolKind::Grr;
    let eps = 6.0;
    let n_surveys = 3;
    let mut rng = StdRng::seed_from_u64(2);
    let plan = SurveyPlan::generate(dataset.d(), n_surveys, &mut rng);
    let campaign = SmpCampaign::new(
        kind,
        &ks,
        &PrivacyModel::Ldp { epsilon: eps },
        dataset.n(),
        SamplingSetting::Uniform,
    )
    .unwrap();
    let snaps = campaign.run(&dataset, &plan, 3, 2);
    let perfect = snaps[n_surveys - 1]
        .iter()
        .enumerate()
        .filter(|(i, p)| (p.correctness(dataset.row(*i)) - 1.0).abs() < 1e-9)
        .count() as f64
        / dataset.n() as f64;
    // Eq. (4) with the *average* per-attribute accuracy is only an
    // approximation here because surveyed attributes vary; bound loosely.
    let acc_mean: f64 = ks
        .iter()
        .map(|&k| deniability::expected_acc(&kind.build(k, eps).unwrap()))
        .sum::<f64>()
        / ks.len() as f64;
    let approx = acc_mean.powi(n_surveys as i32);
    assert!(
        (perfect - approx).abs() < 0.25,
        "empirical {perfect} vs Eq.4-style approx {approx}"
    );
}

#[test]
fn amplification_feeds_rsfd_budgets() {
    // ε′ must exceed ε and match the closed form for the paper's settings.
    for d in [2usize, 10, 18] {
        for eps in [0.5, 1.0, 4.0] {
            let amp = amplify(eps, d);
            assert!(amp > eps);
            assert!((amp - (d as f64 * (eps.exp() - 1.0) + 1.0).ln()).abs() < 1e-12);
        }
    }
}

#[test]
fn pie_decisions_match_campaign_pass_through_counts() {
    let dataset = adult_like(2_000, 21);
    let ks = dataset.schema().cardinalities();
    let beta = 0.6;
    let expected_pass = ks
        .iter()
        .filter(|&&k| matches!(pie::decide(beta, dataset.n(), k), PieDecision::PassThrough))
        .count();
    let campaign = SmpCampaign::new(
        ProtocolKind::Grr,
        &ks,
        &PrivacyModel::Pie { beta },
        dataset.n(),
        SamplingSetting::Uniform,
    )
    .unwrap();
    assert_eq!(campaign.pass_through_count(), expected_pass);
    assert!(expected_pass > 0, "beta = 0.6 should clear small domains");
}

#[test]
fn oracles_expose_consistent_epsilon() {
    for kind in ProtocolKind::ALL {
        let o = kind.build(16, 2.5).unwrap();
        assert!((o.epsilon() - 2.5).abs() < 1e-12);
        assert_eq!(o.domain_size(), 16);
    }
}
