//! Determinism properties of the streamed ingestion path: the `ldp_server`
//! drain snapshot is **bit-identical** to the batch
//! `CollectionPipeline::run` at equal seed, for every constructible
//! `SolutionKind` family × thread count {1, 2, 8} × traffic shape — and a
//! mid-stream snapshot equals a batch run over exactly the prefix of users
//! absorbed so far.

use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol, SolutionKind};
use ldp_datasets::corpora::adult_like;
use ldp_datasets::Dataset;
use ldp_protocols::hash::mix3;
use ldp_protocols::ProtocolKind;
use ldp_server::{Envelope, LdpServer, ServerConfig};
use ldp_sim::traffic::{TrafficGenerator, TrafficShape};
use ldp_sim::{user_rng, BudgetPolicy, CollectionPipeline, CollectionRun};

fn all_kinds() -> Vec<SolutionKind> {
    vec![
        SolutionKind::Spl(ProtocolKind::Grr),
        SolutionKind::Spl(ProtocolKind::Olh),
        SolutionKind::Smp(ProtocolKind::Oue),
        SolutionKind::Smp(ProtocolKind::Ss),
        SolutionKind::RsFd(RsFdProtocol::Grr),
        SolutionKind::RsFd(RsFdProtocol::UeZ(ldp_protocols::UeMode::Optimized)),
        SolutionKind::RsRfd(RsRfdProtocol::Grr),
    ]
}

fn assert_runs_bit_identical(a: &CollectionRun, b: &CollectionRun, label: &str) {
    assert_eq!(a.n, b.n, "{label}: n");
    assert_eq!(
        a.aggregator.counts(),
        b.aggregator.counts(),
        "{label}: support counts"
    );
    for (x, y) in a
        .estimates
        .iter()
        .flatten()
        .zip(b.estimates.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: estimates");
    }
    for (x, y) in a
        .normalized
        .iter()
        .flatten()
        .zip(b.normalized.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: normalized");
    }
}

#[test]
fn drain_is_bit_identical_to_batch_for_kinds_threads_and_shapes() {
    let ds = adult_like(600, 3);
    let ks = ds.schema().cardinalities();
    for kind in all_kinds() {
        // The reference: a single-threaded batch pass.
        let reference = CollectionPipeline::from_kind(kind, &ks, 2.0)
            .unwrap()
            .seed(17)
            .threads(1)
            .run(&ds);
        for threads in [1usize, 2, 8] {
            let pipeline = CollectionPipeline::from_kind(kind, &ks, 2.0)
                .unwrap()
                .seed(17)
                .threads(threads);
            for shape in TrafficShape::ALL {
                let traffic = TrafficGenerator::new(shape, ds.n()).seed(17).wave(61);
                let served = pipeline.serve(&ds, &traffic);
                assert_runs_bit_identical(
                    &served,
                    &reference,
                    &format!("{kind} t={threads} {shape}"),
                );
            }
        }
    }
}

#[test]
fn mid_stream_snapshot_equals_batch_over_the_absorbed_prefix() {
    let ds = adult_like(500, 9);
    let ks = ds.schema().cardinalities();
    for kind in [
        SolutionKind::Spl(ProtocolKind::Grr),
        SolutionKind::Smp(ProtocolKind::Oue),
        SolutionKind::RsFd(RsFdProtocol::Grr),
    ] {
        let solution = kind.build(&ks, 1.5).unwrap();
        let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(3));
        // Any uid-ordered shape works; burst exercises uneven waves.
        let traffic = TrafficGenerator::new(TrafficShape::Burst, ds.n())
            .seed(23)
            .wave(37);
        assert!(traffic.uid_ordered());
        let mut absorbed = 0usize;
        for (i, wave) in traffic.waves().enumerate() {
            absorbed += wave.len();
            server.ingest_batch(wave.into_iter().map(|uid| Envelope {
                uid,
                report: solution.report(ds.row(uid as usize), &mut user_rng(23, uid)),
            }));
            // Snapshot after every third wave: quiesce so the snapshot
            // covers exactly the ingested prefix, then compare against a
            // batch pipeline run over the same prefix of users.
            if i % 3 == 2 {
                server.quiesce();
                let snapshot = server.snapshot();
                assert_eq!(snapshot.n, absorbed as u64, "{kind}: wave {i}");
                let prefix = Dataset::new(
                    ds.schema().clone(),
                    (0..absorbed).flat_map(|u| ds.row(u).to_vec()).collect(),
                );
                let batch = CollectionPipeline::new(solution.clone())
                    .seed(23)
                    .threads(2)
                    .run(&prefix);
                assert_eq!(
                    snapshot.aggregator.counts(),
                    batch.aggregator.counts(),
                    "{kind}: mid-stream snapshot after {absorbed} users"
                );
                for (x, y) in snapshot
                    .estimates
                    .iter()
                    .flatten()
                    .zip(batch.estimates.iter().flatten())
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "{kind}: prefix estimates");
                }
            }
        }
        let final_snapshot = server.drain();
        assert_eq!(final_snapshot.n, ds.n() as u64);
    }
}

#[test]
fn per_epoch_windowed_drains_match_batch_runs_over_each_window() {
    // The longitudinal serving path closes one epoch per round; every
    // retained window must be bit-identical to a batch sanitization pass
    // over that round's users, under both budget policies, and the
    // cumulative drain must hold all rounds.
    let ds = adult_like(400, 21);
    let ks = ds.schema().cardinalities();
    let rounds = 3usize;
    for kind in [
        SolutionKind::Spl(ProtocolKind::Grr),
        SolutionKind::Smp(ProtocolKind::Oue),
        SolutionKind::RsFd(RsFdProtocol::Grr),
    ] {
        for policy in BudgetPolicy::ALL {
            let pipeline = CollectionPipeline::from_kind(kind, &ks, 2.0)
                .unwrap()
                .seed(31)
                .threads(2);
            let traffic = TrafficGenerator::new(TrafficShape::Churn, ds.n())
                .seed(31)
                .wave(53);
            let longitudinal = pipeline
                .serve_rounds(&ds, &traffic, rounds, policy, rounds)
                .unwrap();
            let batch_rounds = pipeline.run_rounds(&ds, rounds, policy).unwrap();
            assert_eq!(longitudinal.epochs.len(), rounds, "{kind} {policy}");
            for (epoch, batch) in longitudinal.epochs.iter().zip(&batch_rounds) {
                let label = format!("{kind} {policy} epoch {}", epoch.epoch);
                assert_eq!(epoch.snapshot.n, batch.n, "{label}: n");
                assert_eq!(
                    epoch.snapshot.aggregator.counts(),
                    batch.aggregator.counts(),
                    "{label}: counts"
                );
                for (x, y) in epoch
                    .snapshot
                    .estimates
                    .iter()
                    .flatten()
                    .zip(batch.estimates.iter().flatten())
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "{label}: estimates");
                }
            }
            assert_eq!(
                longitudinal.cumulative.n,
                (rounds * ds.n()) as u64,
                "{kind} {policy}: cumulative n"
            );
        }
    }
}

#[test]
fn serve_matches_manual_server_drive() {
    // serve() is just sugar over LdpServer + TrafficGenerator; driving the
    // server by hand with the same seeds must give the same counts. This
    // also pins the pipeline's per-user seeding scheme (`ldp_sim::user_rng`,
    // i.e. SmallRng over mix3(seed, uid, USER_SALT)) that the mid-stream
    // test depends on.
    let ds = adult_like(300, 5);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let pipeline = CollectionPipeline::from_kind(kind, &ks, 1.0)
        .unwrap()
        .seed(41)
        .threads(2);
    let traffic = TrafficGenerator::new(TrafficShape::Churn, ds.n()).seed(41);
    let served = pipeline.serve(&ds, &traffic);

    let solution = kind.build(&ks, 1.0).unwrap();
    let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(2));
    for wave in traffic.waves() {
        server.ingest_batch(wave.into_iter().map(|uid| Envelope {
            uid,
            report: solution.report(ds.row(uid as usize), &mut user_rng(41, uid)),
        }));
    }
    let manual = server.drain();
    assert_eq!(manual.n, served.n);
    assert_eq!(manual.aggregator.counts(), served.aggregator.counts());
}

#[test]
fn permanent_dropouts_leave_valid_estimates_over_the_reporting_subset() {
    // Churn in the traffic generator is delayed re-arrival (every user's
    // complete report eventually lands — that's what keeps serve == run).
    // Users who drop out *permanently* simply never reach the wire; the
    // server must then estimate over exactly the users who did report, and
    // its drain must equal a reference pass over that subset.
    let ds = adult_like(800, 13);
    let ks = ds.schema().cardinalities();
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&ks, 2.0)
        .unwrap();
    let server = LdpServer::spawn(solution.clone(), ServerConfig::default().shards(3));
    let mut reference = solution.aggregator();
    let mut reported = 0u64;
    for uid in 0..ds.n() as u64 {
        // Seeded 40% permanent dropout.
        if mix3(99, uid, 0xD0) % 10 < 4 {
            continue;
        }
        let report = solution.report(ds.row(uid as usize), &mut user_rng(99, uid));
        reference.absorb(&report);
        server.ingest(Envelope { uid, report });
        reported += 1;
    }
    let snapshot = server.drain();
    assert!(
        reported > 0 && reported < ds.n() as u64,
        "dropout must bite"
    );
    assert_eq!(snapshot.n, reported);
    assert_eq!(snapshot.aggregator.counts(), reference.counts());
    assert!(
        snapshot.estimates.iter().flatten().all(|f| f.is_finite()),
        "estimates over the reporting subset must be finite"
    );
}

#[test]
fn zero_users_drain_cleanly_through_every_path() {
    let schema = ldp_datasets::Schema::from_cardinalities(&[6, 3, 2]);
    let empty = Dataset::new(schema, Vec::new());
    for kind in all_kinds() {
        let pipeline = CollectionPipeline::from_kind(kind, &[6, 3, 2], 1.0)
            .unwrap()
            .seed(2)
            .threads(8);
        for shape in TrafficShape::ALL {
            let run = pipeline.serve(&empty, &TrafficGenerator::new(shape, 0).seed(2));
            assert_eq!(run.n, 0, "{kind} {shape}");
            assert!(
                run.estimates.iter().flatten().all(|f| f.is_finite()),
                "{kind} {shape}: empty drain must not produce NaN"
            );
            assert!(
                run.normalized.iter().flatten().all(|f| *f == 0.0),
                "{kind} {shape}: empty drain must not fabricate estimates"
            );
        }
    }
}
