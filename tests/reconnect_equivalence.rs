//! Crash-recovery equivalence: a producer fleet suffering injected
//! transport faults — dropped frames, connection resets, mid-frame
//! truncations, duplicated frames, delays — must drain **bit-identically**
//! to the fault-free in-process run at equal seed. Reports are pure
//! functions of `(seed, uid)`, replayed frames are byte-identical, and the
//! server deduplicates by sequence number, so no fault schedule may leak a
//! single bit into the estimates.
//!
//! Also pinned here: graceful degradation (a producer that exceeds its
//! retry budget is reaped from the fleet, which completes minus that
//! partition and reports the deficit) and the client-side read deadline
//! (a silent server surfaces as a typed [`WireError::Timeout`], not a
//! hang).

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use ldp_core::solutions::{RsFdProtocol, SolutionKind};
use ldp_datasets::corpora::adult_like;
use ldp_datasets::Dataset;
use ldp_server::wire::{read_frame, solution_fingerprint, write_frame, Frame, WireError};
use ldp_server::{ServerConfig, ServerSnapshot, WireServer};
use ldp_sim::traffic::{TrafficGenerator, TrafficShape};
use ldp_sim::{
    user_rng, BudgetPolicy, ClientConfig, CollectionPipeline, CollectionRun, FaultKind, FaultPlan,
};

const SEED: u64 = 17;

fn assert_drain_matches_run(snapshot: &ServerSnapshot, reference: &CollectionRun, label: &str) {
    assert_eq!(snapshot.n, reference.n, "{label}: n");
    assert_eq!(
        snapshot.aggregator.counts(),
        reference.aggregator.counts(),
        "{label}: support counts"
    );
    for (x, y) in snapshot
        .estimates
        .iter()
        .flatten()
        .zip(reference.estimates.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: estimates");
    }
    for (x, y) in snapshot
        .normalized
        .iter()
        .flatten()
        .zip(reference.normalized.iter().flatten())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: normalized");
    }
}

/// A chaos producer config: tiny frames so the plan fires many times, a
/// full retry budget, and per-part jitter seeds.
fn chaos_client(part: usize, plan: FaultPlan) -> ClientConfig {
    ClientConfig::resilient()
        .batch(16)
        .backoff_seed(0xC4A05 ^ part as u64)
        .fault_plan(Some(plan))
}

/// Drives a faulted `connections`-producer fleet against `addr`; producer
/// `part` runs under `plan_for(part)`. Returns the summed DRAIN-acked
/// counts.
fn run_faulted_fleet(
    kind: SolutionKind,
    epsilon: f64,
    ds: &Dataset,
    traffic: &TrafficGenerator,
    addr: &str,
    connections: usize,
    plan_for: impl Fn(usize) -> FaultPlan + Sync,
) -> u64 {
    let ks = ds.schema().cardinalities();
    thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|part| {
                let (ks, addr, plan_for) = (ks.clone(), addr, &plan_for);
                s.spawn(move || {
                    CollectionPipeline::from_kind(kind, &ks, epsilon)
                        .unwrap()
                        .seed(SEED)
                        .client(chaos_client(part, plan_for(part)))
                        .serve_remote_part(ds, traffic, addr, part, connections, 0, &mut |_| {})
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

#[test]
fn faulted_fleet_drains_bit_identically_across_shards() {
    // All five fault classes at once, three producers, every shard count:
    // the drained bits must equal the clean single-threaded batch pass.
    let ds = adult_like(600, 3);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let reference = CollectionPipeline::from_kind(kind, &ks, 2.0)
        .unwrap()
        .seed(SEED)
        .threads(1)
        .run(&ds);
    let traffic = TrafficGenerator::new(TrafficShape::Steady, ds.n())
        .seed(SEED)
        .wave(61);
    for shards in [1usize, 2, 8] {
        let server = WireServer::bind(
            "127.0.0.1:0",
            kind.build(&ks, 2.0).unwrap(),
            ServerConfig::default().shards(shards).ack_every(2),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let acked = run_faulted_fleet(kind, 2.0, &ds, &traffic, &addr, 3, |part| {
            FaultPlan::new(SEED ^ part as u64, 3)
        });
        assert_eq!(acked, ds.n() as u64, "shards={shards}: acked");
        server.wait_for_producers(3);
        assert_eq!(server.reaped_sessions(), 0, "shards={shards}: no reaps");
        assert_drain_matches_run(
            &server.finish(),
            &reference,
            &format!("faulted fleet, shards={shards}"),
        );
    }
}

#[test]
fn every_fault_class_alone_preserves_the_drained_bits() {
    // Each class isolated, firing on every second frame: drop and truncate
    // exercise pure replay, reset exercises dedup-after-replay, duplicate
    // exercises dedup without a reconnect, delay exercises nothing but
    // patience.
    let ds = adult_like(400, 5);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let reference = CollectionPipeline::from_kind(kind, &ks, 1.5)
        .unwrap()
        .seed(SEED)
        .threads(1)
        .run(&ds);
    let traffic = TrafficGenerator::new(TrafficShape::Burst, ds.n())
        .seed(SEED)
        .wave(53);
    for fault in FaultKind::ALL {
        let server = WireServer::bind(
            "127.0.0.1:0",
            kind.build(&ks, 1.5).unwrap(),
            ServerConfig::default().shards(2).ack_every(2),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let acked = run_faulted_fleet(kind, 1.5, &ds, &traffic, &addr, 2, |part| {
            FaultPlan::new(SEED ^ part as u64, 2).kinds(&[fault])
        });
        assert_eq!(acked, ds.n() as u64, "{fault:?}: acked");
        server.wait_for_producers(2);
        assert_drain_matches_run(&server.finish(), &reference, &format!("fault {fault:?}"));
    }
}

#[test]
fn faulted_longitudinal_fleet_matches_under_both_budget_policies() {
    // Three rounds over the EPOCH barrier with faults injected mid-round:
    // the resumed sessions re-announce idempotently and the cumulative
    // drained aggregate equals the clean in-process longitudinal run, for
    // both ways of spending the budget across rounds.
    const ROUNDS: usize = 3;
    let ds = adult_like(300, 7);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let traffic = TrafficGenerator::new(TrafficShape::Steady, ds.n())
        .seed(SEED)
        .wave(47);
    for policy in BudgetPolicy::ALL {
        let reference = CollectionPipeline::from_kind(kind, &ks, 3.0)
            .unwrap()
            .seed(SEED)
            .threads(1)
            .serve_rounds(&ds, &traffic, ROUNDS, policy, 2)
            .unwrap()
            .cumulative;
        {
            let connections = 2usize;
            let per_round = kind
                .build(&ks, 3.0)
                .and_then(|s| policy.round_solution(&s, ROUNDS))
                .unwrap();
            let server = WireServer::bind(
                "127.0.0.1:0",
                per_round,
                ServerConfig::default().shards(2).ack_every(2),
            )
            .unwrap()
            .producers(connections);
            let addr = server.local_addr().to_string();
            let acked: u64 = thread::scope(|s| {
                let handles: Vec<_> = (0..connections)
                    .map(|part| {
                        let (ks, addr) = (ks.clone(), addr.as_str());
                        let (ds, traffic) = (&ds, &traffic);
                        s.spawn(move || {
                            CollectionPipeline::from_kind(kind, &ks, 3.0)
                                .unwrap()
                                .seed(SEED)
                                .client(chaos_client(
                                    part,
                                    FaultPlan::new(SEED ^ 0xEB0C ^ part as u64, 4),
                                ))
                                .serve_remote_rounds(
                                    ds,
                                    traffic,
                                    addr,
                                    part,
                                    connections,
                                    ROUNDS,
                                    policy,
                                )
                                .unwrap()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(acked, (ds.n() * ROUNDS) as u64, "{policy}: acked");
            server.wait_for_producers(connections);
            assert_drain_matches_run(
                &server.finish(),
                &reference,
                &format!("faulted longitudinal, {policy}"),
            );
        }
    }
}

#[test]
fn producer_past_its_retry_budget_degrades_the_fleet() {
    // Producer 1 drops every fourth frame with a zero retry budget: its
    // fourth batch dies on the wire and the producer gives up. The fleet
    // rendezvous must still complete — the dead session is reaped after its
    // grace period — and the drained aggregate holds the survivor's full
    // partition plus exactly the dead producer's ingested prefix (three
    // 16-report frames).
    let ds = adult_like(400, 11);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let server = WireServer::bind(
        "127.0.0.1:0",
        kind.build(&ks, 1.5).unwrap(),
        ServerConfig::default().shards(2).read_timeout_ms(200),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let traffic = TrafficGenerator::new(TrafficShape::Steady, ds.n())
        .seed(SEED)
        .wave(61);
    let outcomes: Vec<Result<u64, WireError>> = thread::scope(|s| {
        let handles: Vec<_> = (0..2usize)
            .map(|part| {
                let (ks, addr) = (ks.clone(), addr.as_str());
                let (ds, traffic) = (&ds, &traffic);
                s.spawn(move || {
                    let client = if part == 1 {
                        // Fails fast on its first (fourth-frame) fault.
                        ClientConfig::default()
                            .batch(16)
                            .fault_plan(Some(FaultPlan::new(9, 4).kinds(&[FaultKind::Drop])))
                    } else {
                        ClientConfig::resilient().batch(16)
                    };
                    CollectionPipeline::from_kind(kind, &ks, 1.5)
                        .unwrap()
                        .seed(SEED)
                        .client(client)
                        .serve_remote_part(ds, traffic, addr, part, 2, 0, &mut |_| {})
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(outcomes[0].is_ok(), "the clean producer must drain");
    assert!(outcomes[1].is_err(), "the faulted producer must give up");
    // The fleet rendezvous completes with one drain + one reap.
    server.wait_for_fleet(2);
    assert_eq!(server.reaped_sessions(), 1, "the dead session is reaped");
    let survivor = outcomes[0].as_ref().copied().unwrap();
    let snapshot = server.finish();
    // Deterministic deficit: the dead producer landed exactly its first
    // three 16-report frames before the dropped fourth.
    assert_eq!(snapshot.n, survivor + 48, "survivor + the ingested prefix");
    assert!(
        snapshot.n < ds.n() as u64,
        "the drain must report the deficit"
    );
}

#[test]
fn reaped_producer_unblocks_the_epoch_barrier() {
    // A two-producer longitudinal fleet where producer 1 dies mid-round 0
    // without draining: the survivor's EPOCH barrier first waits out the
    // dead session's grace period, reaps it, shrinks the fleet to one, and
    // releases — the surviving partition completes all rounds.
    const ROUNDS: usize = 2;
    let ds = adult_like(200, 13);
    let ks = ds.schema().cardinalities();
    let kind = SolutionKind::RsFd(RsFdProtocol::Grr);
    let per_round = kind
        .build(&ks, 2.0)
        .and_then(|s| BudgetPolicy::SplitEps.round_solution(&s, ROUNDS))
        .unwrap();
    let fingerprint = solution_fingerprint(&per_round);
    let server = WireServer::bind(
        "127.0.0.1:0",
        per_round,
        ServerConfig::default().shards(2).read_timeout_ms(150),
    )
    .unwrap()
    .producers(2);
    let addr = server.local_addr().to_string();

    // Producer 1: handshakes, pushes one sequenced batch, dies silently.
    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(
            &mut writer,
            &Frame::Hello {
                fingerprint,
                auth: 0,
            },
        )
        .unwrap();
        writer.flush().unwrap();
        assert!(matches!(
            read_frame(&mut reader).unwrap(),
            Frame::HelloAck { .. }
        ));
        let solution = kind
            .build(&ks, 2.0)
            .and_then(|s| BudgetPolicy::SplitEps.round_solution(&s, ROUNDS))
            .unwrap();
        let mut batch = ldp_core::solutions::CompactBatch::new();
        for uid in (0..20u64).filter(|u| u % 2 == 1) {
            let report = solution.report(ds.row(uid as usize), &mut user_rng(SEED, uid));
            batch.push(uid, &report);
        }
        let dead_prefix = batch.len() as u64;
        write_frame(&mut writer, &Frame::BatchSeq { seq: 1, batch }).unwrap();
        writer.flush().unwrap();
        assert_eq!(dead_prefix, 10);
        // Dropped here: no DRAIN, no EPOCH — the handler will mark the
        // session suspect on disconnect.
    }
    // Give the dead handler time to notice the close and start the grace
    // clock before the survivor reaches the barrier.
    thread::sleep(Duration::from_millis(50));

    let traffic = TrafficGenerator::new(TrafficShape::Steady, ds.n())
        .seed(SEED)
        .wave(31);
    let survivor = CollectionPipeline::from_kind(kind, &ks, 2.0)
        .unwrap()
        .seed(SEED)
        .client(ClientConfig::resilient().batch(16))
        .serve_remote_rounds(&ds, &traffic, &addr, 0, 2, ROUNDS, BudgetPolicy::SplitEps)
        .unwrap();
    // 100 even-uid users × 2 rounds.
    assert_eq!(survivor, (ds.n() / 2 * ROUNDS) as u64);
    server.wait_for_fleet(2);
    assert_eq!(server.reaped_sessions(), 1);
    let snapshot = server.finish();
    assert_eq!(snapshot.n, survivor + 10, "survivor + the dead prefix");
}

#[test]
fn client_read_deadline_surfaces_as_typed_timeout() {
    // A listener that accepts and then says nothing: the handshake must
    // come back as WireError::Timeout within the configured deadline
    // instead of blocking forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = thread::spawn(move || {
        // Accept and hold the socket open without responding.
        let (sock, _) = listener.accept().unwrap();
        thread::sleep(Duration::from_millis(800));
        drop(sock);
    });
    let solution = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[4, 3, 2], 1.0)
        .unwrap();
    let started = std::time::Instant::now();
    let err = ldp_sim::NetClient::connect_with(
        addr,
        &solution,
        ClientConfig::default().read_timeout_ms(100),
    )
    .expect_err("a silent server must not hand back a client");
    assert!(
        matches!(err, WireError::Timeout),
        "expected Timeout, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(700),
        "the deadline must fire well before the server gives up"
    );
    hold.join().unwrap();
}
