//! Property tests: the streaming `MultidimAggregator` — absorbed one report
//! at a time, or filled in shards and `merge()`d — produces **bit-identical**
//! estimates to the batch `estimate()` path, for all four solutions and
//! every protocol variant.

use ldp_core::solutions::{
    MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol, Smp, SolutionKind, SolutionReport,
    Spl,
};
use ldp_protocols::{ProtocolKind, UeMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_ks() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..10, 2..6)
}

fn arb_protocol_kind() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Grr),
        Just(ProtocolKind::Olh),
        Just(ProtocolKind::Ss),
        Just(ProtocolKind::Sue),
        Just(ProtocolKind::Oue),
    ]
}

fn arb_rsfd_protocol() -> impl Strategy<Value = RsFdProtocol> {
    prop_oneof![
        Just(RsFdProtocol::Grr),
        Just(RsFdProtocol::UeZ(UeMode::Symmetric)),
        Just(RsFdProtocol::UeZ(UeMode::Optimized)),
        Just(RsFdProtocol::UeR(UeMode::Symmetric)),
        Just(RsFdProtocol::UeR(UeMode::Optimized)),
    ]
}

fn arb_rsrfd_protocol() -> impl Strategy<Value = RsRfdProtocol> {
    prop_oneof![
        Just(RsRfdProtocol::Grr),
        Just(RsRfdProtocol::UeR(UeMode::Symmetric)),
        Just(RsRfdProtocol::UeR(UeMode::Optimized)),
    ]
}

/// Random user tuples inside the domain.
fn tuples(ks: &[usize], n: usize, rng: &mut StdRng) -> Vec<Vec<u32>> {
    (0..n)
        .map(|_| ks.iter().map(|&k| rng.random_range(0..k as u32)).collect())
        .collect()
}

/// Deterministic non-uniform prior over a domain of size `k`.
fn skewed_prior(k: usize) -> Vec<f64> {
    let weights: Vec<f64> = (0..k).map(|v| 1.0 / (v + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

/// Asserts two estimate matrices are bit-identical.
fn assert_bit_identical(batch: &[Vec<f64>], streamed: &[Vec<f64>], label: &str) {
    assert_eq!(batch.len(), streamed.len(), "{label}: attribute count");
    for (j, (a, b)) in batch.iter().zip(streamed).enumerate() {
        assert_eq!(a.len(), b.len(), "{label}: attr {j} width");
        for (v, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: attr {j} value {v}: batch {x} vs streamed {y}"
            );
        }
    }
}

/// Streams `reports` through one sequential aggregator and through three
/// merged shards; checks both against `batch`.
fn check_streaming<S: MultidimSolution>(
    solution: &S,
    reports: &[ldp_core::solutions::MultidimReport],
    batch: &[Vec<f64>],
    label: &str,
) {
    let mut sequential = solution.aggregator();
    for r in reports {
        sequential.absorb_tuple(r);
    }
    assert_bit_identical(batch, &sequential.estimate(), label);

    let mut shards = [
        solution.aggregator(),
        solution.aggregator(),
        solution.aggregator(),
    ];
    for (i, r) in reports.iter().enumerate() {
        shards[i % 3].absorb_tuple(r);
    }
    let mut merged = solution.aggregator();
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(merged.n(), reports.len() as u64, "{label}: merged n");
    assert_bit_identical(batch, &merged.estimate(), &format!("{label} (sharded)"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RS+FD: streaming + sharded merge equals batch for all five variants.
    #[test]
    fn rsfd_streaming_matches_batch(
        ks in arb_ks(),
        protocol in arb_rsfd_protocol(),
        eps in 0.3f64..6.0,
        seed in any::<u64>(),
    ) {
        let solution = RsFd::new(protocol, &ks, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = tuples(&ks, 120, &mut rng)
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let batch = solution.estimate(&reports);
        check_streaming(&solution, &reports, &batch, &protocol.name());
    }

    /// RS+RFD: same, with a skewed prior.
    #[test]
    fn rsrfd_streaming_matches_batch(
        ks in arb_ks(),
        protocol in arb_rsrfd_protocol(),
        eps in 0.3f64..6.0,
        seed in any::<u64>(),
    ) {
        let priors: Vec<Vec<f64>> = ks.iter().map(|&k| skewed_prior(k)).collect();
        let solution = RsRfd::new(protocol, &ks, eps, priors).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = tuples(&ks, 120, &mut rng)
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let batch = solution.estimate(&reports);
        check_streaming(&solution, &reports, &batch, &protocol.name());
    }

    /// SPL: per-attribute Eq. (2) — streaming equals batch for every oracle.
    #[test]
    fn spl_streaming_matches_batch(
        ks in arb_ks(),
        kind in arb_protocol_kind(),
        eps in 0.5f64..6.0,
        seed in any::<u64>(),
    ) {
        let solution = Spl::new(kind, &ks, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = tuples(&ks, 100, &mut rng)
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let batch = solution.estimate(&reports);

        let mut shards = [solution.aggregator(), solution.aggregator()];
        for (i, r) in reports.iter().enumerate() {
            shards[i % 2].absorb_full(r);
        }
        let mut merged = solution.aggregator();
        for s in &shards {
            merged.merge(s);
        }
        assert_bit_identical(&batch, &merged.estimate(), &format!("SPL[{kind}]"));
    }

    /// SMP: per-attribute n_j bookkeeping survives sharding for every oracle.
    #[test]
    fn smp_streaming_matches_batch(
        ks in arb_ks(),
        kind in arb_protocol_kind(),
        eps in 0.5f64..6.0,
        seed in any::<u64>(),
    ) {
        let solution = Smp::new(kind, &ks, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<_> = tuples(&ks, 100, &mut rng)
            .iter()
            .map(|t| solution.report(t, &mut rng))
            .collect();
        let batch = solution.estimate(&reports);

        let mut shards = [solution.aggregator(), solution.aggregator()];
        for (i, r) in reports.iter().enumerate() {
            shards[i % 2].absorb_smp(r);
        }
        let mut merged = solution.aggregator();
        for s in &shards {
            merged.merge(s);
        }
        assert_bit_identical(&batch, &merged.estimate(), &format!("SMP[{kind}]"));
    }

    /// The runtime-dispatch path (SolutionKind::build → DynSolution::report →
    /// absorb(SolutionReport)) agrees with itself across shardings.
    #[test]
    fn dyn_solution_sharding_is_exact(
        ks in arb_ks(),
        eps in 0.5f64..5.0,
        seed in any::<u64>(),
    ) {
        for kind in [
            SolutionKind::Spl(ProtocolKind::Grr),
            SolutionKind::Smp(ProtocolKind::Oue),
            SolutionKind::RsFd(RsFdProtocol::Grr),
            SolutionKind::RsRfd(RsRfdProtocol::UeR(UeMode::Optimized)),
        ] {
            let solution = kind.build(&ks, eps).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let reports: Vec<SolutionReport> = tuples(&ks, 90, &mut rng)
                .iter()
                .map(|t| solution.report(t, &mut rng))
                .collect();
            let batch = solution.estimate(&reports);

            let mut shards = [solution.aggregator(), solution.aggregator(), solution.aggregator()];
            for (i, r) in reports.iter().enumerate() {
                shards[i % 3].absorb(r);
            }
            let mut merged = solution.aggregator();
            for s in &shards {
                merged.merge(s);
            }
            assert_bit_identical(&batch, &merged.estimate(), &solution.name());
        }
    }
}
