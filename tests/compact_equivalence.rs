//! Properties of the compact report representation: for **every protocol ×
//! every solution family**, (1) `CompactBatch` encoding round-trips every
//! report shape exactly, and (2) aggregation straight from the encoded words
//! (`MultidimAggregator::absorb_compact`) is **bit-identical** to absorbing
//! the original `SolutionReport`s — counts, estimates and normalized
//! estimates alike. This is what licenses the ingestion service to move
//! pooled flat buffers across its channels instead of heap-owning reports.

use ldp_core::solutions::{
    CompactBatch, RsFdProtocol, RsRfdProtocol, SolutionKind, SolutionReport,
};
use ldp_datasets::corpora::adult_like;
use ldp_protocols::ProtocolKind;
use ldp_sim::user_rng;

/// Every constructible solution family × every underlying protocol: SPL and
/// SMP over all five frequency oracles, RS+FD over its five fake-data
/// variants, RS+RFD over both of its protocols.
fn all_kinds() -> Vec<SolutionKind> {
    let mut kinds = Vec::new();
    for p in ProtocolKind::ALL {
        kinds.push(SolutionKind::Spl(p));
        kinds.push(SolutionKind::Smp(p));
    }
    for p in RsFdProtocol::ALL {
        kinds.push(SolutionKind::RsFd(p));
    }
    kinds.push(SolutionKind::RsRfd(RsRfdProtocol::Grr));
    kinds.push(SolutionKind::RsRfd(RsRfdProtocol::UeR(
        ldp_protocols::UeMode::Optimized,
    )));
    kinds
}

#[test]
fn compact_encoding_roundtrips_and_aggregates_bit_identically() {
    // A 65-value attribute forces multi-block bit vectors and multi-word
    // subsets through the encoder.
    let ds = adult_like(400, 5);
    let ks = ds.schema().cardinalities();
    for kind in all_kinds() {
        for (seed, eps) in [(1u64, 0.8f64), (2, 2.0), (3, 5.0)] {
            let solution = kind.build(&ks, eps).unwrap();
            let wire: Vec<(u64, SolutionReport)> = (0..ds.n() as u64)
                .map(|uid| {
                    let mut rng = user_rng(seed, uid);
                    (uid, solution.report(ds.row(uid as usize), &mut rng))
                })
                .collect();

            // Property 1: encode → decode is the identity.
            let mut batch = CompactBatch::new();
            for (uid, report) in &wire {
                batch.push(*uid, report);
            }
            assert_eq!(batch.len(), wire.len(), "{kind} eps={eps}");
            let decoded: Vec<(u64, SolutionReport)> = batch.iter().collect();
            assert_eq!(decoded, wire, "{kind} eps={eps}: round-trip");

            // Property 2: counting from the encoded words == absorbing the
            // original reports, bit for bit, including estimates.
            let mut reference = solution.aggregator();
            for (_, report) in &wire {
                reference.absorb(report);
            }
            let mut compact = solution.aggregator();
            compact.absorb_compact(&batch);
            assert_eq!(compact.n(), reference.n(), "{kind} eps={eps}");
            assert_eq!(compact.counts(), reference.counts(), "{kind} eps={eps}");
            for (a, b) in compact
                .estimate()
                .iter()
                .flatten()
                .zip(reference.estimate().iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind} eps={eps}: estimates");
            }
            for (a, b) in compact
                .estimate_normalized()
                .iter()
                .flatten()
                .zip(reference.estimate_normalized().iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind} eps={eps}: normalized");
            }
        }
    }
}

#[test]
fn compact_absorption_splits_arbitrarily_across_batches() {
    // Absorbing one big batch, many small ones, or a reused cleared buffer
    // must all land on the same state (the pool-recycling contract).
    let ds = adult_like(300, 7);
    let ks = ds.schema().cardinalities();
    let solution = SolutionKind::Smp(ProtocolKind::Olh)
        .build(&ks, 2.0)
        .unwrap();
    let wire: Vec<(u64, SolutionReport)> = (0..ds.n() as u64)
        .map(|uid| {
            let mut rng = user_rng(9, uid);
            (uid, solution.report(ds.row(uid as usize), &mut rng))
        })
        .collect();
    let mut reference = solution.aggregator();
    for (_, report) in &wire {
        reference.absorb(report);
    }
    for chunk_size in [1usize, 7, 64, 300] {
        let mut agg = solution.aggregator();
        let mut buffer = CompactBatch::new();
        for chunk in wire.chunks(chunk_size) {
            buffer.clear();
            for (uid, report) in chunk {
                buffer.push(*uid, report);
            }
            agg.absorb_compact(&buffer);
        }
        assert_eq!(agg.counts(), reference.counts(), "chunk={chunk_size}");
    }
}

#[test]
#[should_panic(expected = "does not match this aggregator's solution")]
fn compact_absorption_rejects_foreign_shapes() {
    let smp = SolutionKind::Smp(ProtocolKind::Grr)
        .build(&[4, 3], 1.0)
        .unwrap();
    let rsfd = SolutionKind::RsFd(RsFdProtocol::Grr)
        .build(&[4, 3], 1.0)
        .unwrap();
    let mut rng = user_rng(1, 1);
    let mut batch = CompactBatch::new();
    batch.push(0, &rsfd.report(&[1, 2], &mut rng));
    smp.aggregator().absorb_compact(&batch);
}
