//! Statistical conformance of the frequency estimators: at a fixed seed and
//! n = 200 000 users, every protocol's estimate of every attribute-value
//! frequency must fall within an **analytic variance-derived tolerance
//! band** of the dataset's true marginal, for both the SMP and SPL
//! solutions.
//!
//! Exact-equivalence tests (streaming == batch, serve == run) cannot catch a
//! bias introduced symmetrically into both paths — a wrong `p*`/`q*`, a
//! dropped `1/d` factor, a miscounted `n_j`. These tests do: the tolerance
//! is `Z · σ` with `σ` from the closed-form Eq. (2) variance
//! (`FrequencyOracle::variance`), so a systematic estimator-bias regression
//! larger than a few standard errors fails deterministically.
//!
//! The band is `Z = 5` standard errors plus a small absolute slack for the
//! discreteness of counts; with ~350 (protocol, solution, cell) comparisons
//! a 5σ false positive is vanishingly unlikely, while e.g. swapping `p*`
//! and `q*` or using `n` instead of `n_j` shifts estimates by far more.

use ldp_core::attacks::{AttackKind, AveragingConfig, ReidentConfig};
use ldp_core::solutions::{MixedKind, SolutionKind};
use ldp_core::{NumericKind, NumericOracle};
use ldp_datasets::corpora::adult_like;
use ldp_datasets::generator::{GeneratorConfig, LatentClassGenerator};
use ldp_datasets::mixed::mixed_survey_like;
use ldp_datasets::{Dataset, Schema};
use ldp_protocols::{FrequencyOracle, ProtocolKind};
use ldp_sim::{AttackPipeline, BudgetPolicy, CollectionPipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 200_000;
const Z: f64 = 5.0;
/// Slack for count discreteness and the binomial spread of SMP's per-attr n_j.
const SLACK: f64 = 0.004;

/// A skewed 200k-user population over a compact domain (Σ k_j = 17): large
/// enough that 5σ bands are tight (≲ 0.04 even for SPL at ε/d), small
/// enough that ten pipeline passes stay fast.
fn population() -> Dataset {
    let schema = Schema::from_cardinalities(&[8, 5, 4]);
    let mut rng = StdRng::seed_from_u64(0xC0F0);
    LatentClassGenerator::new(
        schema,
        GeneratorConfig {
            n: N,
            clusters: 5,
            skew: 1.4,
            uniform_mix: 0.1,
            cluster_skew: 0.6,
        },
        &mut rng,
    )
    .generate(&mut rng)
}

/// Asserts every cell of `estimates` lies within `Z·σ + SLACK` of the true
/// marginal, with `σ` from the analytic Eq. (2) variance at the effective
/// per-report budget (`eps_eff`) and effective per-attribute sample count.
fn assert_within_band(
    label: &str,
    dataset: &Dataset,
    estimates: &[Vec<f64>],
    protocol: ProtocolKind,
    eps_eff: f64,
    n_eff: usize,
) {
    let marginals = dataset.marginals();
    for (j, (est, truth)) in estimates.iter().zip(&marginals).enumerate() {
        let oracle = protocol
            .build(dataset.schema().k(j), eps_eff)
            .expect("conformance oracle builds");
        for (v, (&e, &f)) in est.iter().zip(truth).enumerate() {
            let sigma = oracle.variance(f, n_eff).sqrt();
            let tol = Z * sigma + SLACK;
            assert!(
                (e - f).abs() <= tol,
                "{label} attr {j} value {v}: estimate {e:.5} vs true {f:.5} \
                 (|diff| {:.5} > tol {tol:.5}, sigma {sigma:.5})",
                (e - f).abs()
            );
        }
    }
}

#[test]
fn smp_estimates_conform_to_analytic_bands_for_every_protocol() {
    let ds = population();
    let ks = ds.schema().cardinalities();
    let eps = 2.0;
    for protocol in ProtocolKind::ALL {
        let run = CollectionPipeline::from_kind(SolutionKind::Smp(protocol), &ks, eps)
            .unwrap()
            .seed(0x51AB + protocol as u64)
            .threads(4)
            .run(&ds);
        assert_eq!(run.n, N as u64);
        // SMP: each user discloses one uniformly sampled attribute at the
        // full ε, so attribute j sees ≈ n/d reports.
        assert_within_band(
            &format!("SMP[{protocol}]"),
            &ds,
            &run.estimates,
            protocol,
            eps,
            N / ds.d(),
        );
    }
}

#[test]
fn spl_estimates_conform_to_analytic_bands_for_every_protocol() {
    let ds = population();
    let ks = ds.schema().cardinalities();
    let eps = 2.0;
    for protocol in ProtocolKind::ALL {
        let run = CollectionPipeline::from_kind(SolutionKind::Spl(protocol), &ks, eps)
            .unwrap()
            .seed(0x5B1 + protocol as u64)
            .threads(4)
            .run(&ds);
        assert_eq!(run.n, N as u64);
        // SPL: every user reports every attribute at ε/d.
        assert_within_band(
            &format!("SPL[{protocol}]"),
            &ds,
            &run.estimates,
            protocol,
            eps / ds.d() as f64,
            N,
        );
    }
}

#[test]
fn conformance_bands_would_catch_a_biased_estimator() {
    // Sanity check on the test's own power: shift every estimate by a bias
    // comparable to swapping a factor the estimators must get right, and
    // verify the band rejects it. Guards against the tolerance silently
    // growing so wide the suite stops testing anything.
    let ds = population();
    let ks = ds.schema().cardinalities();
    let eps = 2.0;
    let run = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, eps)
        .unwrap()
        .seed(0xB1A5)
        .threads(4)
        .run(&ds);
    let biased: Vec<Vec<f64>> = run
        .estimates
        .iter()
        .map(|e| e.iter().map(|x| x * 1.25 + 0.02).collect())
        .collect();
    let caught = std::panic::catch_unwind(|| {
        assert_within_band(
            "SMP[GRR] (biased)",
            &ds,
            &biased,
            ProtocolKind::Grr,
            eps,
            N / ds.d(),
        );
    });
    assert!(
        caught.is_err(),
        "a 25% multiplicative bias must not fit inside the tolerance band"
    );
}

/// Numeric mechanisms under conformance test, in presentation order.
const NUMERIC_MECHANISMS: [NumericKind; 3] = [
    NumericKind::Duchi,
    NumericKind::Piecewise,
    NumericKind::Hybrid,
];

/// Slack for the numeric bands (means are continuous — no count
/// discreteness, only float rounding and the inner-band estimate noise).
const NUM_SLACK: f64 = 0.002;

/// A skewed 200k-value population over `[-1, 1]` (mean ≈ −1/3): the numeric
/// analogue of [`population`].
fn numeric_population() -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(0x40FA);
    (0..N)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            u * u * 2.0 - 1.0
        })
        .collect()
}

/// Empirical mean and mean-squared sanitization error of one mechanism over
/// the whole population, plus the analytic per-report variance averaged over
/// the true values.
fn numeric_moments(kind: NumericKind, eps: f64, ts: &[f64], seed: u64) -> (f64, f64, f64) {
    let oracle = kind.build(eps).expect("numeric oracle builds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0.0;
    let mut sq_err = 0.0;
    for &t in ts {
        let y = oracle
            .sanitize(t, &mut rng)
            .expect("population values are in range")
            .value();
        sum += y;
        sq_err += (y - t) * (y - t);
    }
    let n = ts.len() as f64;
    let analytic = ts.iter().map(|&t| oracle.variance(t)).sum::<f64>() / n;
    (sum / n, sq_err / n, analytic)
}

#[test]
fn numeric_mechanism_means_conform_to_analytic_bands() {
    // Every mechanism's sanitized mean must land within Z standard errors of
    // the true population mean, with σ from the closed-form `Var[y | t]` —
    // a wrong `C`/`s` constant or a lost unbiasing factor shifts the mean by
    // far more than 5σ at n = 200 000.
    let ts = numeric_population();
    let truth = ts.iter().sum::<f64>() / ts.len() as f64;
    for kind in NUMERIC_MECHANISMS {
        for (ei, eps) in [0.5, 1.0, 2.0, 4.0, 8.0].into_iter().enumerate() {
            let seed = 0x40FA_0001 + (kind.tag() << 8) + ei as u64;
            let (mean, _, analytic) = numeric_moments(kind, eps, &ts, seed);
            let sigma = (analytic / N as f64).sqrt();
            let tol = Z * sigma + NUM_SLACK;
            assert!(
                (mean - truth).abs() <= tol,
                "{} eps {eps}: mean {mean:.5} vs true {truth:.5} \
                 (|diff| {:.5} > tol {tol:.5}, sigma {sigma:.5})",
                kind.name(),
                (mean - truth).abs()
            );
        }
    }
}

#[test]
fn numeric_mechanism_variances_conform_to_analytic_bands() {
    // The mean squared sanitization error must match the average closed-form
    // `Var[y | t]`; the tolerance is Z standard errors of the squared-error
    // mean itself (its spread is bounded by the mechanism's output bound).
    let ts = numeric_population();
    for kind in NUMERIC_MECHANISMS {
        for (ei, eps) in [0.5, 1.0, 2.0, 4.0, 8.0].into_iter().enumerate() {
            let seed = 0x40FA_0002 + (kind.tag() << 8) + ei as u64;
            let (_, mse, analytic) = numeric_moments(kind, eps, &ts, seed);
            // Var[(y−t)²] ≤ E[(y−t)⁴] ≤ (C+1)² · E[(y−t)²].
            let bound = kind.build(eps).unwrap().bound() + 1.0;
            let sigma = (bound * bound * analytic / N as f64).sqrt();
            let tol = Z * sigma + NUM_SLACK;
            assert!(
                (mse - analytic).abs() <= tol,
                "{} eps {eps}: empirical var {mse:.5} vs analytic {analytic:.5} \
                 (|diff| {:.5} > tol {tol:.5})",
                kind.name(),
                (mse - analytic).abs()
            );
        }
    }
}

#[test]
fn numeric_bands_would_catch_a_biased_mechanism() {
    // Power guard, mirroring the categorical one: the ε ≥ 1 mean bands must
    // be tight enough that a constant 0.08 shift (≈ what a dropped
    // unbiasing factor costs at these budgets) cannot hide inside them.
    let ts = numeric_population();
    for kind in NUMERIC_MECHANISMS {
        for eps in [1.0, 2.0, 4.0, 8.0] {
            let oracle = kind.build(eps).unwrap();
            let analytic = ts.iter().map(|&t| oracle.variance(t)).sum::<f64>() / ts.len() as f64;
            let tol = Z * (analytic / N as f64).sqrt() + NUM_SLACK;
            assert!(
                tol < 0.08,
                "{} eps {eps}: band {tol:.5} too wide to detect a 0.08 bias",
                kind.name()
            );
        }
    }
}

#[test]
fn mixed_numeric_mean_estimates_conform_end_to_end() {
    // Full-pipeline band: the mixed k-of-d collection's numeric mean
    // estimates (fixed-point sums, per-attribute n_j accounting, budget
    // split ε/k) must land within Z standard errors of the population mean.
    // σ adds the without-replacement subsampling spread to the mechanism
    // variance at the split budget.
    let mixed = mixed_survey_like(N, 0x3153D);
    let ks = mixed.ks();
    let sample_k = 2usize;
    let eps = 2.0;
    let frac = sample_k as f64 / mixed.d() as f64;
    let n_eff = N as f64 * frac;
    for kind in NUMERIC_MECHANISMS {
        let solution = SolutionKind::Mixed(MixedKind {
            protocol: ProtocolKind::Grr,
            numeric: kind,
            sample_k,
        })
        .build(&ks, eps)
        .expect("mixed solution builds");
        let run = CollectionPipeline::new(solution)
            .seed(0x3153D + kind.tag())
            .threads(4)
            .run_mixed(&mixed);
        assert_eq!(run.n, N as u64);
        let oracle = kind.build(eps / sample_k as f64).unwrap();
        for j in 0..mixed.d_num() {
            let truth = mixed.numeric_mean(j);
            let est = run.estimates[mixed.d_cat() + j][0];
            let mech_var = (0..mixed.n())
                .map(|i| oracle.variance(mixed.num_value(i, j)))
                .sum::<f64>()
                / N as f64;
            let pop_var = (0..mixed.n())
                .map(|i| (mixed.num_value(i, j) - truth).powi(2))
                .sum::<f64>()
                / N as f64;
            let sigma = ((mech_var + (1.0 - frac) * pop_var) / n_eff).sqrt();
            let tol = Z * sigma + NUM_SLACK;
            assert!(
                (est - truth).abs() <= tol,
                "MIXED[GRR+{}] numeric attr {j}: estimate {est:.5} vs true {truth:.5} \
                 (|diff| {:.5} > tol {tol:.5}, sigma {sigma:.5})",
                kind.name(),
                (est - truth).abs()
            );
        }
    }
}

#[test]
fn normalized_estimates_are_simplex_projected() {
    // The normalized outputs the serving layer exposes must be valid
    // distributions whenever data was collected.
    let ds = population();
    let ks = ds.schema().cardinalities();
    let run = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Oue), &ks, 2.0)
        .unwrap()
        .seed(3)
        .threads(4)
        .run(&ds);
    for (j, dist) in run.normalized.iter().enumerate() {
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "attr {j} sums to {total}");
        assert!(dist.iter().all(|&p| p >= 0.0), "attr {j} has negative mass");
    }
}

/// Power guard for the longitudinal threat model: pooling a target's
/// reports across rounds (the averaging attack) must gain real power when
/// the budget is naively ε-split — every fresh round leaks a new sampled
/// attribute — and must gain **nothing** under RAPPOR-style memoization,
/// whose rounds replay the round-0 report bit-for-bit.
#[test]
fn averaging_attack_power_rises_with_rounds_only_without_memoization() {
    const EPS: f64 = 32.0;
    const ROUNDS: usize = 4;
    let asr = |seed: u64, policy: BudgetPolicy, rounds: usize| -> f64 {
        let ds = adult_like(1200, seed);
        let ks = ds.schema().cardinalities();
        let collection =
            CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, EPS)
                .unwrap()
                .seed(seed)
                .threads(2);
        let attack = AttackPipeline::from_kind(AttackKind::Averaging(AveragingConfig {
            rounds,
            reident: ReidentConfig::default(),
        }))
        .unwrap()
        .seed(seed)
        .threads(2);
        let run = attack.run_rounds(&collection, &ds, rounds, policy).unwrap();
        run.outcome.reident().unwrap().rid_acc[0]
    };
    for seed in [51u64, 52] {
        let split_one = asr(seed, BudgetPolicy::SplitEps, 1);
        let split_many = asr(seed, BudgetPolicy::SplitEps, ROUNDS);
        // 5σ band on a top-1 ASR difference over 1200 targets: the binomial
        // standard error at the larger rate, in percentage points.
        let p = (split_many.max(split_one) / 100.0).clamp(1.0 / 1200.0, 0.5);
        let five_sigma = 5.0 * 100.0 * (p * (1.0 - p) / 1200.0).sqrt();
        assert!(
            split_many > split_one + five_sigma,
            "seed {seed}: ε-splitting ASR must rise with rounds \
             (R=1: {split_one:.3}%, R={ROUNDS}: {split_many:.3}%, 5σ = {five_sigma:.3})"
        );
        // Memoized rounds replay round 0, so pooling them is a no-op: the
        // curve is exactly flat per seed — stronger than any σ band.
        let memo_one = asr(seed, BudgetPolicy::Memoize, 1);
        let memo_many = asr(seed, BudgetPolicy::Memoize, ROUNDS);
        assert_eq!(
            memo_one.to_bits(),
            memo_many.to_bits(),
            "seed {seed}: memoization must keep the averaging ASR exactly flat \
             (R=1: {memo_one:.3}%, R={ROUNDS}: {memo_many:.3}%)"
        );
    }
}
