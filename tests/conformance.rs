//! Statistical conformance of the frequency estimators: at a fixed seed and
//! n = 200 000 users, every protocol's estimate of every attribute-value
//! frequency must fall within an **analytic variance-derived tolerance
//! band** of the dataset's true marginal, for both the SMP and SPL
//! solutions.
//!
//! Exact-equivalence tests (streaming == batch, serve == run) cannot catch a
//! bias introduced symmetrically into both paths — a wrong `p*`/`q*`, a
//! dropped `1/d` factor, a miscounted `n_j`. These tests do: the tolerance
//! is `Z · σ` with `σ` from the closed-form Eq. (2) variance
//! (`FrequencyOracle::variance`), so a systematic estimator-bias regression
//! larger than a few standard errors fails deterministically.
//!
//! The band is `Z = 5` standard errors plus a small absolute slack for the
//! discreteness of counts; with ~350 (protocol, solution, cell) comparisons
//! a 5σ false positive is vanishingly unlikely, while e.g. swapping `p*`
//! and `q*` or using `n` instead of `n_j` shifts estimates by far more.

use ldp_core::solutions::SolutionKind;
use ldp_datasets::generator::{GeneratorConfig, LatentClassGenerator};
use ldp_datasets::{Dataset, Schema};
use ldp_protocols::{FrequencyOracle, ProtocolKind};
use ldp_sim::CollectionPipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 200_000;
const Z: f64 = 5.0;
/// Slack for count discreteness and the binomial spread of SMP's per-attr n_j.
const SLACK: f64 = 0.004;

/// A skewed 200k-user population over a compact domain (Σ k_j = 17): large
/// enough that 5σ bands are tight (≲ 0.04 even for SPL at ε/d), small
/// enough that ten pipeline passes stay fast.
fn population() -> Dataset {
    let schema = Schema::from_cardinalities(&[8, 5, 4]);
    let mut rng = StdRng::seed_from_u64(0xC0F0);
    LatentClassGenerator::new(
        schema,
        GeneratorConfig {
            n: N,
            clusters: 5,
            skew: 1.4,
            uniform_mix: 0.1,
            cluster_skew: 0.6,
        },
        &mut rng,
    )
    .generate(&mut rng)
}

/// Asserts every cell of `estimates` lies within `Z·σ + SLACK` of the true
/// marginal, with `σ` from the analytic Eq. (2) variance at the effective
/// per-report budget (`eps_eff`) and effective per-attribute sample count.
fn assert_within_band(
    label: &str,
    dataset: &Dataset,
    estimates: &[Vec<f64>],
    protocol: ProtocolKind,
    eps_eff: f64,
    n_eff: usize,
) {
    let marginals = dataset.marginals();
    for (j, (est, truth)) in estimates.iter().zip(&marginals).enumerate() {
        let oracle = protocol
            .build(dataset.schema().k(j), eps_eff)
            .expect("conformance oracle builds");
        for (v, (&e, &f)) in est.iter().zip(truth).enumerate() {
            let sigma = oracle.variance(f, n_eff).sqrt();
            let tol = Z * sigma + SLACK;
            assert!(
                (e - f).abs() <= tol,
                "{label} attr {j} value {v}: estimate {e:.5} vs true {f:.5} \
                 (|diff| {:.5} > tol {tol:.5}, sigma {sigma:.5})",
                (e - f).abs()
            );
        }
    }
}

#[test]
fn smp_estimates_conform_to_analytic_bands_for_every_protocol() {
    let ds = population();
    let ks = ds.schema().cardinalities();
    let eps = 2.0;
    for protocol in ProtocolKind::ALL {
        let run = CollectionPipeline::from_kind(SolutionKind::Smp(protocol), &ks, eps)
            .unwrap()
            .seed(0x51AB + protocol as u64)
            .threads(4)
            .run(&ds);
        assert_eq!(run.n, N as u64);
        // SMP: each user discloses one uniformly sampled attribute at the
        // full ε, so attribute j sees ≈ n/d reports.
        assert_within_band(
            &format!("SMP[{protocol}]"),
            &ds,
            &run.estimates,
            protocol,
            eps,
            N / ds.d(),
        );
    }
}

#[test]
fn spl_estimates_conform_to_analytic_bands_for_every_protocol() {
    let ds = population();
    let ks = ds.schema().cardinalities();
    let eps = 2.0;
    for protocol in ProtocolKind::ALL {
        let run = CollectionPipeline::from_kind(SolutionKind::Spl(protocol), &ks, eps)
            .unwrap()
            .seed(0x5B1 + protocol as u64)
            .threads(4)
            .run(&ds);
        assert_eq!(run.n, N as u64);
        // SPL: every user reports every attribute at ε/d.
        assert_within_band(
            &format!("SPL[{protocol}]"),
            &ds,
            &run.estimates,
            protocol,
            eps / ds.d() as f64,
            N,
        );
    }
}

#[test]
fn conformance_bands_would_catch_a_biased_estimator() {
    // Sanity check on the test's own power: shift every estimate by a bias
    // comparable to swapping a factor the estimators must get right, and
    // verify the band rejects it. Guards against the tolerance silently
    // growing so wide the suite stops testing anything.
    let ds = population();
    let ks = ds.schema().cardinalities();
    let eps = 2.0;
    let run = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, eps)
        .unwrap()
        .seed(0xB1A5)
        .threads(4)
        .run(&ds);
    let biased: Vec<Vec<f64>> = run
        .estimates
        .iter()
        .map(|e| e.iter().map(|x| x * 1.25 + 0.02).collect())
        .collect();
    let caught = std::panic::catch_unwind(|| {
        assert_within_band(
            "SMP[GRR] (biased)",
            &ds,
            &biased,
            ProtocolKind::Grr,
            eps,
            N / ds.d(),
        );
    });
    assert!(
        caught.is_err(),
        "a 25% multiplicative bias must not fit inside the tolerance band"
    );
}

#[test]
fn normalized_estimates_are_simplex_projected() {
    // The normalized outputs the serving layer exposes must be valid
    // distributions whenever data was collected.
    let ds = population();
    let ks = ds.schema().cardinalities();
    let run = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Oue), &ks, 2.0)
        .unwrap()
        .seed(3)
        .threads(4)
        .run(&ds);
    for (j, dist) in run.normalized.iter().enumerate() {
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "attr {j} sums to {total}");
        assert!(dist.iter().all(|&p| p >= 0.0), "attr {j} has negative mass");
    }
}
