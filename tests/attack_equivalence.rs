//! Property tests: the sharded `AttackPipeline` produces **bit-identical**
//! RID-ACC and ASR to the serial `evaluate_serial` reference, for every
//! `SolutionKind` variant and thread count — the adversary counterpart of
//! `streaming_equivalence.rs`.

use ldp_core::attacks::{
    evaluate_serial, AttackKind, AttackOutcome, InferenceConfig, ReidentConfig,
};
use ldp_core::inference::{AttackClassifier, AttackModel};
use ldp_core::solutions::{RsFdProtocol, RsRfdProtocol, SolutionKind};
use ldp_datasets::{Dataset, Schema};
use ldp_gbdt::LogisticParams;
use ldp_protocols::ProtocolKind;
use ldp_sim::{AttackPipeline, CollectionPipeline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn all_kinds() -> Vec<SolutionKind> {
    vec![
        SolutionKind::Spl(ProtocolKind::Grr),
        SolutionKind::Spl(ProtocolKind::Olh),
        SolutionKind::Smp(ProtocolKind::Grr),
        SolutionKind::Smp(ProtocolKind::Oue),
        SolutionKind::RsFd(RsFdProtocol::Grr),
        SolutionKind::RsRfd(RsRfdProtocol::Grr),
    ]
}

/// A small skewed population over the given domain sizes.
fn dataset(n: usize, ks: &[usize], seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<u32> = (0..n)
        .flat_map(|_| {
            ks.iter()
                .map(|&k| {
                    if rng.random::<f64>() < 0.5 {
                        0
                    } else {
                        rng.random_range(0..k as u32)
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let cards: Vec<u32> = ks.iter().map(|&k| k as u32).collect();
    Dataset::new(Schema::from_cardinalities(&cards), data)
}

/// Cheap classifier so the fake-data chained attacks stay fast under
/// proptest.
fn logistic() -> AttackClassifier {
    AttackClassifier::Logistic(LogisticParams::default())
}

fn assert_outcomes_bit_identical(a: &AttackOutcome, b: &AttackOutcome, label: &str) {
    match (a, b) {
        (AttackOutcome::Reident(x), AttackOutcome::Reident(y)) => {
            assert_eq!(x.n_targets, y.n_targets, "{label}: target count");
            assert_eq!(x.top_ks, y.top_ks, "{label}: top-ks");
            for (p, q) in x.rid_acc.iter().zip(&y.rid_acc) {
                assert_eq!(p.to_bits(), q.to_bits(), "{label}: RID-ACC {p} vs {q}");
            }
        }
        (AttackOutcome::Inference(x), AttackOutcome::Inference(y)) => {
            assert_eq!(
                x.aif_acc.to_bits(),
                y.aif_acc.to_bits(),
                "{label}: ASR {} vs {}",
                x.aif_acc,
                y.aif_acc
            );
            assert_eq!(x.n_test, y.n_test, "{label}: test count");
        }
        (AttackOutcome::Pie(x), AttackOutcome::Pie(y)) => {
            assert_eq!(x, y, "{label}: PIE audit");
        }
        _ => panic!("{label}: outcome families diverged"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Re-identification through the pipeline: the sharded run equals the
    /// serial reference bit-for-bit on every solution kind and thread count.
    #[test]
    fn sharded_reident_equals_serial_for_all_kinds(
        seed in any::<u64>(),
        eps in 1.0f64..8.0,
    ) {
        let ks = [5usize, 4, 6, 3];
        let ds = dataset(150, &ks, seed);
        for kind in all_kinds() {
            let collection = CollectionPipeline::from_kind(kind, &ks, eps)
                .unwrap()
                .seed(seed)
                .threads(4);
            let attack = AttackKind::Reident(ReidentConfig {
                classifier: logistic(),
                ..ReidentConfig::default()
            });
            let reference = AttackPipeline::from_kind(attack.clone())
                .unwrap()
                .seed(seed)
                .threads(1)
                .run(&collection, &ds);
            let serial = evaluate_serial(reference.fitted.as_ref(), seed);
            assert_outcomes_bit_identical(
                &reference.outcome,
                &serial,
                &format!("{kind} (pipeline t=1 vs serial)"),
            );
            for threads in THREAD_COUNTS {
                let sharded = AttackPipeline::from_kind(attack.clone())
                    .unwrap()
                    .seed(seed)
                    .threads(threads)
                    .run(&collection, &ds);
                assert_outcomes_bit_identical(
                    &serial,
                    &sharded.outcome,
                    &format!("{kind} (t={threads})"),
                );
            }
        }
    }

    /// Sampled-attribute inference ASR: sharded equals serial bit-for-bit on
    /// both fake-data solutions for every thread count.
    #[test]
    fn sharded_asr_equals_serial_for_fake_data_kinds(
        seed in any::<u64>(),
        eps in 1.0f64..8.0,
    ) {
        let ks = [5usize, 4, 6];
        let ds = dataset(200, &ks, seed);
        for kind in [
            SolutionKind::RsFd(RsFdProtocol::Grr),
            SolutionKind::RsRfd(RsRfdProtocol::Grr),
        ] {
            let collection = CollectionPipeline::from_kind(kind, &ks, eps)
                .unwrap()
                .seed(seed)
                .threads(4);
            let attack = AttackKind::SampledAttribute(InferenceConfig {
                model: AttackModel::NoKnowledge { synth_factor: 1.0 },
                classifier: logistic(),
            });
            let reference = AttackPipeline::from_kind(attack.clone())
                .unwrap()
                .seed(seed)
                .threads(1)
                .run(&collection, &ds);
            let serial = evaluate_serial(reference.fitted.as_ref(), seed);
            assert_outcomes_bit_identical(
                &reference.outcome,
                &serial,
                &format!("{kind} (pipeline t=1 vs serial)"),
            );
            for threads in THREAD_COUNTS {
                let sharded = AttackPipeline::from_kind(attack.clone())
                    .unwrap()
                    .seed(seed)
                    .threads(threads)
                    .run(&collection, &ds);
                assert_outcomes_bit_identical(
                    &serial,
                    &sharded.outcome,
                    &format!("{kind} (t={threads})"),
                );
            }
        }
    }
}

#[test]
fn pie_audit_is_thread_count_invariant() {
    let ks = [4usize, 3, 5, 2];
    let ds = dataset(900, &ks, 31);
    let collection = CollectionPipeline::from_kind(SolutionKind::Smp(ProtocolKind::Grr), &ks, 1.0)
        .unwrap()
        .seed(31);
    let outcomes: Vec<AttackOutcome> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            AttackPipeline::from_kind(AttackKind::PieAudit { beta: 0.6 })
                .unwrap()
                .seed(31)
                .threads(threads)
                .run(&collection, &ds)
                .outcome
        })
        .collect();
    for o in &outcomes[1..] {
        assert_outcomes_bit_identical(&outcomes[0], o, "PIE audit");
    }
}
