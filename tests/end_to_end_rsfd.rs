//! Integration: RS+FD attribute inference (Fig. 3/15) and the collapse of
//! re-identification under RS+FD (Fig. 4).

use ldp_core::inference::{AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::reident::ReidentAttack;
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol};
use ldp_datasets::corpora::{acs_employment_like, adult_like, nursery_like};
use ldp_datasets::Dataset;
use ldp_gbdt::GbdtParams;
use ldp_protocols::UeMode;
use ldp_sim::{rid_acc_multi, run_rsfd_campaign, RsFdCampaignConfig, SurveyPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn classifier() -> AttackClassifier {
    AttackClassifier::Gbdt(GbdtParams {
        rounds: 15,
        max_depth: 4,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    })
}

fn nk_aif(dataset: &Dataset, protocol: RsFdProtocol, epsilon: f64, seed: u64) -> (f64, f64) {
    let ks = dataset.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(seed);
    let solution = RsFd::new(protocol, &ks, epsilon).expect("rsfd");
    let observed: Vec<_> = dataset
        .rows()
        .map(|t| solution.report(t, &mut rng))
        .collect();
    let out = SampledAttributeAttack::evaluate(
        &solution,
        &observed,
        &AttackModel::NoKnowledge { synth_factor: 1.0 },
        &classifier(),
        &mut rng,
    );
    (out.aif_acc, out.baseline)
}

#[test]
fn sue_z_leaks_almost_completely_at_high_epsilon() {
    let ds = acs_employment_like(1_200, 2);
    let (acc, _) = nk_aif(&ds, RsFdProtocol::UeZ(UeMode::Symmetric), 10.0, 4);
    assert!(acc > 80.0, "SUE-z should approach 100%, got {acc}");
}

#[test]
fn oue_z_leaks_about_half() {
    let ds = acs_employment_like(1_200, 2);
    let (acc, _) = nk_aif(&ds, RsFdProtocol::UeZ(UeMode::Optimized), 10.0, 4);
    assert!(
        (30.0..75.0).contains(&acc),
        "OUE-z should sit near 50%, got {acc}"
    );
}

#[test]
fn grr_beats_baseline_on_skewed_corpora() {
    let ds = adult_like(2_000, 3);
    let (acc, baseline) = nk_aif(&ds, RsFdProtocol::Grr, 10.0, 5);
    assert!(
        acc > 1.5 * baseline,
        "Adult GRR AIF {acc} should clearly beat baseline {baseline}"
    );
}

#[test]
fn nursery_defeats_the_grr_attack() {
    // Appendix D: uniform-like marginals make uniform fakes
    // indistinguishable — no meaningful gain over random guessing.
    let ds = nursery_like(1_500, 4);
    let (acc, baseline) = nk_aif(&ds, RsFdProtocol::Grr, 10.0, 6);
    assert!(
        acc < baseline + 5.0,
        "Nursery GRR AIF {acc} should hug the baseline {baseline}"
    );
}

#[test]
fn rsfd_reidentification_collapses_relative_to_smp() {
    use ldp_protocols::ProtocolKind;
    use ldp_sim::{PrivacyModel, SamplingSetting, SmpCampaign};

    let dataset = adult_like(2_000, 7);
    let ks = dataset.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(10);
    let plan = SurveyPlan::generate(dataset.d(), 4, &mut rng);
    let all: Vec<usize> = (0..dataset.d()).collect();
    let attack = ReidentAttack::build(&dataset, &all);

    // SMP baseline risk at the same epsilon.
    let smp = SmpCampaign::new(
        ProtocolKind::Grr,
        &ks,
        &PrivacyModel::Ldp { epsilon: 8.0 },
        dataset.n(),
        SamplingSetting::Uniform,
    )
    .expect("campaign");
    let smp_snaps = smp.run(&dataset, &plan, 21, 2);
    let smp_acc = rid_acc_multi(&attack, &smp_snaps[3], &[10], 5, 2)[0];

    // RS+FD[GRR] with the chained classifier attack.
    let config = RsFdCampaignConfig {
        protocol: RsFdProtocol::Grr,
        epsilon: 8.0,
        synth_factor: 1.0,
        classifier: classifier(),
    };
    let rsfd_snaps = run_rsfd_campaign(&dataset, &plan, &config, 22, 2).expect("campaign");
    let rsfd_acc = rid_acc_multi(&attack, &rsfd_snaps[3], &[10], 5, 2)[0];

    assert!(
        rsfd_acc < 0.5 * smp_acc,
        "RS+FD should drastically reduce re-identification: {rsfd_acc} vs SMP {smp_acc}"
    );
}
