//! Statistical conformance of the word-parallel UE sanitizer.
//!
//! The word-parallel paths behind [`UnaryEncoding::perturb_bits`] change RNG
//! draw order and count, so bit-stream equality with the per-bit reference is
//! impossible by design — the contract is *distributional*: every output bit
//! is independently 1 with probability `p` (input 1-lanes) or `q` (input
//! 0-lanes). This suite certifies that contract directly:
//!
//! * **Per-bit marginal bands** — for SUE and OUE across ε ∈ {0.5, 1, 2, 4,
//!   8} and k ∈ {16, 64, 257, 1024} (257 and 1024 exercise the partial- and
//!   multi-word layouts), every single bit's empirical rate over an
//!   *arbitrary* (not one-hot) input vector must land within `5σ` of its
//!   analytic marginal, and the pooled 1-lane/0-lane rates within much
//!   tighter pooled `5σ` bands (the pooled band is what catches a small
//!   systematic threshold bias; the per-bit band is what catches a
//!   mishandled word or lane).
//! * **Pairwise independence** — empirical covariance of bit pairs (adjacent
//!   within a word, same lane across words, across the partial-tail
//!   boundary) must sit inside `5σ` bands around zero, so a mask bug that
//!   correlates lanes inside or across words cannot pass.
//! * **Skip-sampling properties** (proptest) — the geometric skip-sampler's
//!   flip-count distribution matches the Binomial CDF within DKW bounds for
//!   adversarial `(p, q)` (driven through ε, including q ≈ 0.5 and
//!   p ≈ 0.999), and the forced sparse and dense paths produce statistically
//!   identical marginals on either side of the `q = 2⁻⁵` crossover.
//!
//! The negative twins of these bands — deliberately broken word-mask
//! generators that the same statistics must *reject* — live as in-crate
//! power-guard tests next to the `#[cfg(test)]` bug shims in
//! `crates/protocols/src/ue.rs` (integration tests cannot see `cfg(test)`
//! items).

use ldp_protocols::{BitVec, FrequencyOracle, UeMode, UnaryEncoding};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const Z: f64 = 5.0;
/// Absolute slack on per-bit bands for count discreteness.
const BIT_SLACK: f64 = 0.002;
/// Absolute slack on pooled and covariance bands.
const POOL_SLACK: f64 = 0.0008;

const EPSILONS: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];
const KS: [usize; 4] = [16, 64, 257, 1024];
const MODES: [UeMode; 2] = [UeMode::Symmetric, UeMode::Optimized];

/// Deterministic "arbitrary" input: ~35% ones scattered over all words,
/// with at least one 1-lane and one 0-lane pinned so both marginal classes
/// are always populated.
fn arbitrary_input(k: usize, seed: u64) -> BitVec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bv = BitVec::zeros(k);
    for i in 0..k {
        if rng.random::<f64>() < 0.35 {
            bv.set(i, true);
        }
    }
    bv.set(1, true);
    bv.set(2, false);
    bv
}

/// Empirical per-bit one-counts of `trials` sanitizations of `input`.
fn bit_counts(ue: &UnaryEncoding, input: &BitVec, trials: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = BitVec::zeros(input.len());
    let mut counts = vec![0u32; input.len()];
    for _ in 0..trials {
        ue.perturb_bits_into(input, &mut out, &mut rng);
        for j in out.ones() {
            counts[j] += 1;
        }
    }
    counts
}

#[test]
fn per_bit_marginals_conform_for_sue_and_oue() {
    const TRIALS: usize = 3000;
    for mode in MODES {
        for (ei, eps) in EPSILONS.into_iter().enumerate() {
            for (ki, k) in KS.into_iter().enumerate() {
                let ue = UnaryEncoding::new(k, eps, mode).unwrap();
                let seed = 0x5A17_0000 + ((mode as u64) << 16) + ((ei as u64) << 8) + ki as u64;
                let input = arbitrary_input(k, seed);
                let counts = bit_counts(&ue, &input, TRIALS, seed ^ 0xFEED);
                let label = format!("{} eps={eps} k={k}", mode.name());
                let n = TRIALS as f64;
                // Per-bit bands: every lane, including the word tail.
                let (mut ones_set, mut zeros_set) = (0u64, 0u64);
                for (j, &c) in counts.iter().enumerate() {
                    let target = if input.get(j) {
                        ones_set += c as u64;
                        ue.p()
                    } else {
                        zeros_set += c as u64;
                        ue.q()
                    };
                    let rate = c as f64 / n;
                    let tol = Z * (target * (1.0 - target) / n).sqrt() + BIT_SLACK;
                    assert!(
                        (rate - target).abs() <= tol,
                        "{label} bit {j}: rate {rate:.5} vs {target:.5} (tol {tol:.5})"
                    );
                }
                // Pooled bands: tight enough to catch a 2⁻⁸ threshold bias.
                let one_lanes = input.count_ones();
                let zero_lanes = k - one_lanes;
                let p_hat = ones_set as f64 / (n * one_lanes as f64);
                let q_hat = zeros_set as f64 / (n * zero_lanes as f64);
                let p_tol =
                    Z * (ue.p() * (1.0 - ue.p()) / (n * one_lanes as f64)).sqrt() + POOL_SLACK;
                let q_tol =
                    Z * (ue.q() * (1.0 - ue.q()) / (n * zero_lanes as f64)).sqrt() + POOL_SLACK;
                assert!(
                    (p_hat - ue.p()).abs() <= p_tol,
                    "{label}: pooled p_hat {p_hat:.6} vs p {:.6} (tol {p_tol:.6})",
                    ue.p()
                );
                assert!(
                    (q_hat - ue.q()).abs() <= q_tol,
                    "{label}: pooled q_hat {q_hat:.6} vs q {:.6} (tol {q_tol:.6})",
                    ue.q()
                );
            }
        }
    }
}

#[test]
fn bit_pairs_are_empirically_independent() {
    // Covers both regimes: ε = 1 is dense (OUE q ≈ 0.27), ε = 4 is sparse
    // (OUE q ≈ 0.018). k = 257 puts one lane in a partial tail word.
    const TRIALS: usize = 6000;
    let configs = [
        (UeMode::Optimized, 1.0, 257usize),
        (UeMode::Optimized, 4.0, 257),
        (UeMode::Symmetric, 1.0, 64),
    ];
    for (ci, (mode, eps, k)) in configs.into_iter().enumerate() {
        let ue = UnaryEncoding::new(k, eps, mode).unwrap();
        let seed = 0x9A19_0000 + ci as u64;
        let input = arbitrary_input(k, seed);
        // Pairs chosen to catch the classic word-mask failure shapes:
        // adjacent lanes inside one word, the same lane across adjacent
        // words, a cross-word diagonal, and (k = 257 only) a pair spanning
        // the partial-tail boundary.
        let mut pairs = vec![(0usize, 1usize), (5, 6), (17, k - 3), (3, k / 2)];
        if k > 64 {
            pairs.push((63, 64));
            pairs.push((3, 67));
        }
        if k == 257 {
            pairs.push((192, 256));
            pairs.push((255, 256));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let mut out = BitVec::zeros(k);
        let mut joint = vec![0u32; pairs.len()];
        let mut singles = vec![0u32; pairs.len() * 2];
        for _ in 0..TRIALS {
            ue.perturb_bits_into(&input, &mut out, &mut rng);
            for (pi, &(a, b)) in pairs.iter().enumerate() {
                let (xa, xb) = (out.get(a), out.get(b));
                singles[2 * pi] += xa as u32;
                singles[2 * pi + 1] += xb as u32;
                joint[pi] += (xa && xb) as u32;
            }
        }
        let n = TRIALS as f64;
        for (pi, &(a, b)) in pairs.iter().enumerate() {
            let ra = if input.get(a) { ue.p() } else { ue.q() };
            let rb = if input.get(b) { ue.p() } else { ue.q() };
            let cov = joint[pi] as f64 / n
                - (singles[2 * pi] as f64 / n) * (singles[2 * pi + 1] as f64 / n);
            // σ of the empirical covariance of two independent Bernoullis.
            let sigma = (ra * (1.0 - ra) * rb * (1.0 - rb) / n).sqrt();
            let tol = Z * sigma + POOL_SLACK;
            assert!(
                cov.abs() <= tol,
                "{} eps={eps} k={k} pair ({a},{b}): covariance {cov:.6} \
                 outside ±{tol:.6}",
                mode.name()
            );
        }
    }
}

#[test]
fn crossover_boundary_configs_agree_on_marginals() {
    // OUE's q crosses SPARSE_Q_MAX = 2⁻⁵ at ε = ln 31 ≈ 3.434: ε just below
    // routes dense, just above routes sparse. Both sides must conform to the
    // same analytic bands (the regime switch is invisible in distribution).
    const TRIALS: usize = 20_000;
    let k = 130; // two full words + a 2-lane tail
    let below = UnaryEncoding::new(k, 3.43, UeMode::Optimized).unwrap();
    let above = UnaryEncoding::new(k, 3.44, UeMode::Optimized).unwrap();
    assert!(!below.sparse_path() && above.sparse_path());
    for (ue, seed) in [(&below, 0xB0D1u64), (&above, 0xB0D2)] {
        let input = arbitrary_input(k, seed);
        let counts = bit_counts(ue, &input, TRIALS, seed ^ 0xFACE);
        let n = TRIALS as f64;
        let zeros_set: u64 = counts
            .iter()
            .enumerate()
            .filter(|&(j, _)| !input.get(j))
            .map(|(_, &c)| c as u64)
            .sum();
        let zero_lanes = (k - input.count_ones()) as f64;
        let q_hat = zeros_set as f64 / (n * zero_lanes);
        let tol = Z * (ue.q() * (1.0 - ue.q()) / (n * zero_lanes)).sqrt() + POOL_SLACK;
        assert!(
            (q_hat - ue.q()).abs() <= tol,
            "eps={} (sparse={}): q_hat {q_hat:.6} vs q {:.6} (tol {tol:.6})",
            ue.epsilon(),
            ue.sparse_path(),
            ue.q()
        );
    }
}

/// `P(X ≤ i)` for `X ~ Binomial(k, prob)`, computed iteratively (k stays
/// small in the property tests, so no log-space arithmetic needed).
fn binomial_cdf(k: usize, prob: f64) -> Vec<f64> {
    let mut pmf = vec![0.0f64; k + 1];
    pmf[0] = (1.0 - prob).powi(k as i32);
    let ratio = prob / (1.0 - prob);
    for i in 0..k {
        pmf[i + 1] = pmf[i] * ratio * ((k - i) as f64) / ((i + 1) as f64);
    }
    let mut cdf = pmf;
    for i in 1..=k {
        cdf[i] += cdf[i - 1];
    }
    cdf
}

/// Budgets that drive `(p, q)` to the adversarial corners: ε = 0.02 puts
/// q ≈ 0.4975 (near 1/2), ε = 14 puts SUE p ≈ 0.9991 (near 1) and OUE
/// q ≈ 8·10⁻⁷ (near 0).
fn arb_eps() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.02), Just(0.5), Just(2.0), Just(8.0), Just(14.0),]
}

fn arb_mode() -> impl Strategy<Value = UeMode> {
    prop_oneof![Just(UeMode::Symmetric), Just(UeMode::Optimized)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DKW bound on the skip-sampler's flip-count law: sanitizing the zero
    /// vector through the forced-sparse path must give a one-count
    /// distributed Binomial(k, q); sanitizing the all-ones vector,
    /// Binomial(k, p). The empirical CDF over N samples may deviate from the
    /// analytic CDF by at most √(ln(2/α)/2N) (Dvoretzky–Kiefer–Wolfowitz),
    /// α = 10⁻⁹.
    #[test]
    fn sparse_flip_counts_match_binomial_cdf(
        mode in arb_mode(),
        eps in arb_eps(),
        k in 4usize..48,
        seed in any::<u64>(),
    ) {
        const N: usize = 4000;
        let dkw = ((2.0f64 / 1e-9).ln() / (2.0 * N as f64)).sqrt();
        let ue = UnaryEncoding::new(k, eps, mode).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for all_ones in [false, true] {
            let mut input = BitVec::zeros(k);
            if all_ones {
                for i in 0..k {
                    input.set(i, true);
                }
            }
            let target = if all_ones { ue.p() } else { ue.q() };
            let cdf = binomial_cdf(k, target);
            let mut hist = vec![0u32; k + 1];
            let mut out = BitVec::zeros(k);
            for _ in 0..N {
                ue.perturb_bits_sparse_into(&input, &mut out, &mut rng);
                hist[out.count_ones()] += 1;
            }
            let mut cum = 0u32;
            for i in 0..=k {
                cum += hist[i];
                let emp = cum as f64 / N as f64;
                prop_assert!(
                    (emp - cdf[i]).abs() <= dkw,
                    "{} eps={eps} k={k} ones={all_ones}: |F̂({i})−F({i})| = {:.4} > DKW {dkw:.4}",
                    mode.name(),
                    (emp - cdf[i]).abs()
                );
            }
        }
    }

    /// The forced sparse and dense paths are marginally indistinguishable on
    /// the same `(p, q, k)` — pooled 1-lane and 0-lane rates agree within a
    /// two-sample 5σ band regardless of which side of the crossover the
    /// protocol would normally route to.
    #[test]
    fn forced_sparse_and_dense_marginals_agree(
        mode in arb_mode(),
        eps in arb_eps(),
        k in 65usize..200,
        seed in any::<u64>(),
    ) {
        const TRIALS: usize = 3000;
        let ue = UnaryEncoding::new(k, eps, mode).unwrap();
        let input = arbitrary_input(k, seed);
        let one_lanes = input.count_ones();
        let zero_lanes = k - one_lanes;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let mut out = BitVec::zeros(k);
        let mut rates = [[0.0f64; 2]; 2]; // [path][lane-class]
        for (pi, forced_sparse) in [true, false].into_iter().enumerate() {
            let (mut on_ones, mut on_zeros) = (0u64, 0u64);
            for _ in 0..TRIALS {
                if forced_sparse {
                    ue.perturb_bits_sparse_into(&input, &mut out, &mut rng);
                } else {
                    ue.perturb_bits_dense_into(&input, &mut out, &mut rng);
                }
                for j in out.ones() {
                    if input.get(j) {
                        on_ones += 1;
                    } else {
                        on_zeros += 1;
                    }
                }
            }
            rates[pi][0] = on_ones as f64 / (TRIALS * one_lanes) as f64;
            rates[pi][1] = on_zeros as f64 / (TRIALS * zero_lanes) as f64;
        }
        for (li, (target, lanes)) in [(ue.p(), one_lanes), (ue.q(), zero_lanes)]
            .into_iter()
            .enumerate()
        {
            let n = (TRIALS * lanes) as f64;
            let tol = Z * (2.0 * target * (1.0 - target) / n).sqrt() + POOL_SLACK;
            prop_assert!(
                (rates[0][li] - rates[1][li]).abs() <= tol,
                "{} eps={eps} k={k} class {li}: sparse {:.6} vs dense {:.6} (tol {tol:.6})",
                mode.name(),
                rates[0][li],
                rates[1][li]
            );
        }
    }
}
