//! Integration: the RS+RFD countermeasure improves utility (Fig. 5) and
//! suppresses the sampled-attribute inference attack (Fig. 6 / Fig. 17).

use ldp_core::inference::{AttackClassifier, AttackModel, SampledAttributeAttack};
use ldp_core::metrics::mse_avg;
use ldp_core::solutions::{MultidimSolution, RsFd, RsFdProtocol, RsRfd, RsRfdProtocol};
use ldp_datasets::corpora::{acs_employment_like, ACS_EMPLOYMENT_N};
use ldp_datasets::priors::{correct_priors_scaled, IncorrectPrior};
use ldp_gbdt::GbdtParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn classifier() -> AttackClassifier {
    AttackClassifier::Gbdt(GbdtParams {
        rounds: 15,
        max_depth: 4,
        min_child_weight: 0.05,
        ..GbdtParams::default()
    })
}

#[test]
fn correct_priors_beat_uniform_fakes_on_mse() {
    let ds = acs_employment_like(4_000, 9);
    let ks = ds.schema().cardinalities();
    let truth = ds.marginals();
    let eps = 2.0f64.ln();
    // Average over a few seeds to stabilize the comparison.
    let (mut mse_fd, mut mse_rfd) = (0.0, 0.0);
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, eps).expect("rsfd");
        let reports: Vec<_> = ds.rows().map(|t| rsfd.report(t, &mut rng)).collect();
        mse_fd += mse_avg(&truth, &rsfd.estimate(&reports));

        let priors = correct_priors_scaled(&ds, 0.1, ACS_EMPLOYMENT_N, &mut rng);
        let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, eps, priors).expect("rsrfd");
        let reports: Vec<_> = ds.rows().map(|t| rsrfd.report(t, &mut rng)).collect();
        mse_rfd += mse_avg(&truth, &rsrfd.estimate(&reports));
    }
    assert!(
        mse_rfd < mse_fd,
        "RS+RFD (correct priors) must beat RS+FD: {mse_rfd} vs {mse_fd}"
    );
}

#[test]
fn correct_priors_suppress_the_inference_attack() {
    let ds = acs_employment_like(1_500, 10);
    let ks = ds.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(11);
    let nk = AttackModel::NoKnowledge { synth_factor: 1.0 };

    let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, 10.0).expect("rsfd");
    let fd_reports: Vec<_> = ds.rows().map(|t| rsfd.report(t, &mut rng)).collect();
    let fd = SampledAttributeAttack::evaluate(&rsfd, &fd_reports, &nk, &classifier(), &mut rng);

    let priors = correct_priors_scaled(&ds, 0.1, ACS_EMPLOYMENT_N, &mut rng);
    let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, 10.0, priors).expect("rsrfd");
    let rfd_reports: Vec<_> = ds.rows().map(|t| rsrfd.report(t, &mut rng)).collect();
    let rfd = SampledAttributeAttack::evaluate(&rsrfd, &rfd_reports, &nk, &classifier(), &mut rng);

    assert!(
        rfd.aif_acc < fd.aif_acc,
        "countermeasure must reduce AIF-ACC: {} vs {}",
        rfd.aif_acc,
        fd.aif_acc
    );
    assert!(
        rfd.aif_acc < rfd.baseline + 6.0,
        "RS+RFD AIF-ACC {} should hug the baseline {}",
        rfd.aif_acc,
        rfd.baseline
    );
}

#[test]
fn even_wrong_zipf_priors_help_against_the_attack() {
    let ds = acs_employment_like(1_500, 12);
    let ks = ds.schema().cardinalities();
    let mut rng = StdRng::seed_from_u64(13);
    let nk = AttackModel::NoKnowledge { synth_factor: 1.0 };

    let rsfd = RsFd::new(RsFdProtocol::Grr, &ks, 10.0).expect("rsfd");
    let fd_reports: Vec<_> = ds.rows().map(|t| rsfd.report(t, &mut rng)).collect();
    let fd = SampledAttributeAttack::evaluate(&rsfd, &fd_reports, &nk, &classifier(), &mut rng);

    let priors = IncorrectPrior::Zipf.generate_all(&ks, &mut rng);
    let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, 10.0, priors).expect("rsrfd");
    let rfd_reports: Vec<_> = ds.rows().map(|t| rsrfd.report(t, &mut rng)).collect();
    let rfd = SampledAttributeAttack::evaluate(&rsrfd, &rfd_reports, &nk, &classifier(), &mut rng);

    assert!(
        rfd.aif_acc < fd.aif_acc,
        "Zipf priors should still blunt the attack: {} vs {}",
        rfd.aif_acc,
        fd.aif_acc
    );
}

#[test]
fn rsrfd_estimators_recover_marginals_with_wrong_priors() {
    // Unbiasedness holds for *any* valid prior — the estimator subtracts the
    // exact fake-data bias. Wrong priors cost variance, not bias.
    let ds = acs_employment_like(6_000, 14);
    let ks = ds.schema().cardinalities();
    let truth = ds.marginals();
    let mut rng = StdRng::seed_from_u64(15);
    let priors = IncorrectPrior::Dirichlet.generate_all(&ks, &mut rng);
    let rsrfd = RsRfd::new(RsRfdProtocol::Grr, &ks, 3.0, priors).expect("rsrfd");
    let reports: Vec<_> = ds.rows().map(|t| rsrfd.report(t, &mut rng)).collect();
    let est = rsrfd.estimate(&reports);
    // Spot-check the largest attribute's head value.
    let head = truth[0]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    assert!(
        (est[0][head] - truth[0][head]).abs() < 0.15,
        "estimate {} vs truth {}",
        est[0][head],
        truth[0][head]
    );
}
